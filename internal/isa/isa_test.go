package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpNamesComplete(t *testing.T) {
	for o := 0; o < NumOps; o++ {
		name := Op(o).String()
		if strings.HasPrefix(name, "op(") {
			t.Errorf("opcode %d has no name", o)
		}
	}
	if Op(200).Valid() {
		t.Error("opcode 200 reported valid")
	}
	if !strings.HasPrefix(Op(200).String(), "op(") {
		t.Error("invalid opcode printed a real name")
	}
}

func TestInstStringShapes(t *testing.T) {
	cases := map[string]Inst{
		"add r1, r2, r3":  {Op: ADD, Rd: 1, Rs: 2, Rt: 3},
		"addiu r1, r2, 5": {Op: ADDIU, Rd: 1, Rs: 2, Imm: 5},
		"lw r4, 8(r29)":   {Op: LW, Rd: 4, Rs: 29, Imm: 8},
		"sw r4, -4(r29)":  {Op: SW, Rt: 4, Rs: 29, Imm: -4},
		"beq r1, r0, 7":   {Op: BEQ, Rs: 1, Rt: 0, Imm: 7},
		"j 12":            {Op: J, Imm: 12},
		"jr r31":          {Op: JR, Rs: 31},
		"jalr r1, r2":     {Op: JALR, Rd: 1, Rs: 2},
		"syscall":         {Op: SYSCALL},
		"lui r5, 16":      {Op: LUI, Rd: 5, Imm: 16},
		"pktlw r8, 4(r0)": {Op: PKTLW, Rd: 8, Rs: 0, Imm: 4},
		"xmit r0, r9":     {Op: XMIT, Rs: 0, Rt: 9},
		"pktlen r9":       {Op: PKTLEN, Rd: 9},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("String(%+v) = %q, want %q", in, got, want)
		}
	}
}

func TestDisassembleNumbersLines(t *testing.T) {
	code := Code{{Op: NOP}, {Op: HALT}}
	out := Disassemble(code)
	if !strings.Contains(out, "0: nop") || !strings.Contains(out, "1: halt") {
		t.Errorf("Disassemble output malformed:\n%s", out)
	}
}

// Property: every valid instruction disassembles to a non-empty string
// that begins with the opcode's mnemonic.
func TestQuickStringStartsWithMnemonic(t *testing.T) {
	f := func(op uint8, rd, rs, rt uint8, imm int32) bool {
		o := Op(op % uint8(NumOps))
		in := Inst{Op: o, Rd: rd % 32, Rs: rs % 32, Rt: rt % 32, Imm: imm}
		s := in.String()
		return s != "" && strings.HasPrefix(s, o.String())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
