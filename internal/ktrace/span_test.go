package ktrace

import "testing"

func TestSpanBeginEnd(t *testing.T) {
	r := NewSpans(8, 1)
	root := r.Begin(100, SpanReq, 3, SpanContext{}, 42)
	if !root.Ctx().Valid() {
		t.Fatal("root context invalid")
	}
	child := r.Begin(110, SpanIPCCall, 3, root.Ctx(), 0)
	if child.Ctx().Trace != root.Ctx().Trace {
		t.Error("child not in parent's trace")
	}
	r.End(child, 150)
	r.End(root, 160)
	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d", len(spans))
	}
	if spans[0].Kind != SpanReq || spans[0].Parent != 0 || spans[0].End != 160 || spans[0].Arg != 42 {
		t.Errorf("root span = %+v", spans[0])
	}
	if spans[1].Parent != spans[0].ID || spans[1].Start != 110 || spans[1].End != 150 {
		t.Errorf("child span = %+v", spans[1])
	}
}

func TestSpanNilRecorder(t *testing.T) {
	var r *SpanRecorder
	ref := r.Begin(1, SpanReq, 0, SpanContext{}, 0)
	if ref.Ctx().Valid() {
		t.Error("nil recorder issued a context")
	}
	r.End(ref, 2)
	if r.Total() != 0 || r.Len() != 0 || r.Dropped() != 0 || r.Spans() != nil {
		t.Error("nil recorder not inert")
	}
	r.Reset()
}

func TestSpanDeterministicIDs(t *testing.T) {
	a, b := NewSpans(16, 7), NewSpans(16, 7)
	for i := 0; i < 10; i++ {
		ra := a.Begin(uint64(i), SpanRx, 1, SpanContext{}, 0)
		rb := b.Begin(uint64(i), SpanRx, 1, SpanContext{}, 0)
		if ra.Ctx() != rb.Ctx() {
			t.Fatalf("same salt diverged at %d: %+v vs %+v", i, ra.Ctx(), rb.Ctx())
		}
	}
	c := NewSpans(16, 8)
	if c.Begin(0, SpanRx, 1, SpanContext{}, 0).Ctx() == a.Begin(0, SpanRx, 1, SpanContext{}, 0).Ctx() {
		t.Error("different salts collided")
	}
}

func TestSpanRingWrap(t *testing.T) {
	r := NewSpans(4, 1)
	var refs []SpanRef
	for i := 0; i < 6; i++ {
		refs = append(refs, r.Begin(uint64(i), SpanDisk, 0, SpanContext{}, 0))
	}
	if r.Total() != 6 || r.Len() != 4 || r.Dropped() != 2 {
		t.Errorf("total=%d len=%d dropped=%d", r.Total(), r.Len(), r.Dropped())
	}
	// Ending a wrapped-away span must not stamp whatever replaced it.
	r.End(refs[0], 99)
	for _, s := range r.Spans() {
		if s.End == 99 {
			t.Error("wrapped End stamped a stranger")
		}
	}
	// A live one still closes.
	r.End(refs[5], 77)
	spans := r.Spans()
	if spans[len(spans)-1].End != 77 {
		t.Error("live End lost")
	}
	if spans[0].Start != 2 {
		t.Errorf("oldest-first violated: %+v", spans[0])
	}
}

func TestSpanKindNames(t *testing.T) {
	for k := SpanKind(0); k < numSpanKinds; k++ {
		if k.String() == "" || k.String() == "span?" {
			t.Errorf("kind %d unnamed", k)
		}
		got, ok := SpanKindByName(k.String())
		if !ok || got != k {
			t.Errorf("round-trip %v -> %v %v", k, got, ok)
		}
	}
	if _, ok := SpanKindByName("bogus"); ok {
		t.Error("bogus name resolved")
	}
}

func TestSpanResetContinuesIDs(t *testing.T) {
	r := NewSpans(8, 3)
	before := r.Begin(1, SpanReq, 0, SpanContext{}, 0).Ctx()
	r.Reset()
	after := r.Begin(2, SpanReq, 0, SpanContext{}, 0).Ctx()
	if before == after {
		t.Error("IDs reused across Reset")
	}
	if r.Total() != 1 {
		t.Errorf("total after reset = %d", r.Total())
	}
}
