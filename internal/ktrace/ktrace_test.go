package ktrace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRecorderBasics(t *testing.T) {
	r := New(8)
	if !r.Enabled() {
		t.Fatal("new recorder not enabled")
	}
	r.Emit(10, KindSyscallEnter, 1, 0, 0, 0)
	r.Emit(20, KindSyscallExit, 1, 0, 0, 0)
	if r.Len() != 2 || r.Total() != 2 || r.Dropped() != 0 {
		t.Fatalf("len/total/dropped = %d/%d/%d", r.Len(), r.Total(), r.Dropped())
	}
	ev := r.Events()
	if len(ev) != 2 || ev[0].Cycle != 10 || ev[1].Cycle != 20 {
		t.Fatalf("events = %+v", ev)
	}
}

func TestNilAndDisabledRecorder(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Error("nil recorder enabled")
	}
	r.Emit(1, KindTLBMiss, 1, 0, 0, 0) // must not panic
	if r.Events() != nil || r.Len() != 0 {
		t.Error("nil recorder holds events")
	}
	r2 := New(4)
	r2.SetEnabled(false)
	r2.Emit(1, KindTLBMiss, 1, 0, 0, 0)
	if r2.Len() != 0 {
		t.Error("disabled recorder recorded")
	}
}

// TestWraparound: events beyond capacity overwrite the oldest; the reader
// sees a consistent, cycle-ordered window of the most recent capacity
// events.
func TestWraparound(t *testing.T) {
	const capacity = 16
	const emitted = 100
	r := New(capacity)
	for i := 0; i < emitted; i++ {
		r.Emit(uint64(i*5), Kind(1+i%int(numKinds-1)), uint32(i%3), uint64(i), 0, 0)
	}
	if r.Len() != capacity {
		t.Fatalf("Len = %d, want %d", r.Len(), capacity)
	}
	if r.Total() != emitted {
		t.Fatalf("Total = %d, want %d", r.Total(), emitted)
	}
	if r.Dropped() != emitted-capacity {
		t.Fatalf("Dropped = %d, want %d", r.Dropped(), emitted-capacity)
	}
	ev := r.Events()
	if len(ev) != capacity {
		t.Fatalf("window = %d events, want %d", len(ev), capacity)
	}
	// The window is exactly the newest `capacity` events, oldest first,
	// with non-decreasing cycle stamps.
	for i, e := range ev {
		want := uint64((emitted - capacity + i))
		if e.Arg0 != want {
			t.Errorf("window[%d].Arg0 = %d, want %d", i, e.Arg0, want)
		}
		if i > 0 && e.Cycle < ev[i-1].Cycle {
			t.Errorf("window not cycle-ordered at %d: %d < %d", i, e.Cycle, ev[i-1].Cycle)
		}
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if kindNames[k] == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if Kind(250).String() != "kind?" {
		t.Errorf("out-of-range kind = %q", Kind(250).String())
	}
}

func sample() []Event {
	return []Event{
		{Cycle: 100, Kind: KindEnvCreate, Env: 1},
		{Cycle: 110, Kind: KindSyscallEnter, Env: 1, Arg0: 3},
		{Cycle: 140, Kind: KindSyscallExit, Env: 1, Arg0: 3},
		{Cycle: 150, Kind: KindTLBMiss, Env: 1, Arg0: 0x1000},
		{Cycle: 160, Kind: KindCtxSwitch, Env: 1, Arg0: 2},
		{Cycle: 170, Kind: KindPktDeliver, Env: 2, Arg0: 64},
		{Cycle: 200, Kind: KindSyscallEnter, Env: 2, Arg0: 5}, // unmatched
	}
}

func TestWriteText(t *testing.T) {
	var b bytes.Buffer
	if err := WriteText(&b, sample()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"syscall-enter", "tlb-miss", "ctx-switch", "pkt-deliver"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q", want)
		}
	}
}

func TestWriteJSONL(t *testing.T) {
	var b bytes.Buffer
	if err := WriteJSONL(&b, sample()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != len(sample()) {
		t.Fatalf("%d lines, want %d", len(lines), len(sample()))
	}
	for i, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d not JSON: %v", i, err)
		}
		if _, ok := m["kind"]; !ok {
			t.Errorf("line %d missing kind", i)
		}
	}
}

// TestWriteChrome checks the export is valid Chrome trace_event JSON:
// a traceEvents array whose entries all carry name/ph/ts/pid, with
// syscall enter/exit pairs folded into complete ("X") slices.
func TestWriteChrome(t *testing.T) {
	var b bytes.Buffer
	if err := WriteChrome(&b, sample(), 25); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no traceEvents")
	}
	var sawComplete, sawInstant, sawMeta bool
	for _, e := range doc.TraceEvents {
		for _, key := range []string{"name", "ph", "pid"} {
			if _, ok := e[key]; !ok {
				t.Fatalf("event missing %q: %v", key, e)
			}
		}
		switch e["ph"] {
		case "X":
			sawComplete = true
			if e["dur"].(float64) <= 0 {
				t.Errorf("X event with non-positive dur: %v", e)
			}
			// 30 cycles at 25 MHz = 1.2 us.
			if ts := e["ts"].(float64); ts != 110.0/25 {
				t.Errorf("X ts = %v, want %v", ts, 110.0/25)
			}
		case "i":
			sawInstant = true
		case "M":
			sawMeta = true
		}
	}
	if !sawComplete || !sawInstant || !sawMeta {
		t.Errorf("complete/instant/meta = %v/%v/%v, want all true", sawComplete, sawInstant, sawMeta)
	}
}
