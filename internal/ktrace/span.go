package ktrace

// Causal request spans. The flight recorder (ktrace.go) answers "what did
// the kernel decide, in what order"; spans answer "where did *this*
// request spend its cycles". A span is one named interval of work
// attributed to an environment, linked to the span that caused it — across
// IPC, protected control transfers, ASH runs, and the wire — so a request
// that starts on one machine and is serviced on another assembles into a
// single tree (internal/fleet does the assembly).
//
// The contract is ktrace's: collection is observation, never
// participation. Begin/End write fixed-size records into a preallocated
// ring and never tick a simulated clock, so a run with span collection
// enabled is cycle-identical to one without (pinned by
// chaos.TestSpanCollectionIsFree). Identifiers come from a deterministic
// per-recorder stream — a splitmix64 walk seeded by the recorder's salt —
// so same-seed runs produce byte-identical span trees; no wall clock or
// host randomness is ever consulted.

// TraceID names one request's whole causal tree, fleet-wide.
type TraceID uint64

// SpanID names one span within a trace.
type SpanID uint64

// SpanContext is the propagated half of a span: enough to make children
// under it anywhere causality flows — through a register file across a
// protected call, or through the trace-context option of a packet. The
// zero SpanContext means "no active trace".
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether the context names a live trace.
func (c SpanContext) Valid() bool { return c.Trace != 0 && c.Span != 0 }

// SpanKind is the span type — the causal taxonomy, one kind per place a
// request can spend time.
type SpanKind uint8

// Span kinds.
const (
	SpanNone     SpanKind = iota
	SpanReq               // root: one logical request (library-defined)
	SpanIPCCall           // IPC/RPC client side: call issued to reply seen
	SpanIPCServe          // IPC/RPC server side: handler execution
	SpanPCT               // protected control transfer, caller to callee entry
	SpanUDPTx             // UDP send: header build + copy to the NIC
	SpanTCPTx             // TCP segment transmission (one per attempt)
	SpanRx                // interrupt-level delivery: classify + copy-in
	SpanASH               // application-specific handler run in the kernel
	SpanRecv              // application drain: socket buffer to the caller
	SpanDisk              // disk I/O performed on behalf of the request
	SpanDSM               // DSM page transfer: fault to remote page installed
	SpanSwapOut           // swap pager eviction: page table to disk
	SpanSwapIn            // swap pager refault: disk back to a mapped frame

	numSpanKinds
)

var spanKindNames = [numSpanKinds]string{
	SpanNone:     "none",
	SpanReq:      "req",
	SpanIPCCall:  "ipc-call",
	SpanIPCServe: "ipc-serve",
	SpanPCT:      "pct",
	SpanUDPTx:    "udp-tx",
	SpanTCPTx:    "tcp-tx",
	SpanRx:       "rx",
	SpanASH:      "ash",
	SpanRecv:     "recv",
	SpanDisk:     "disk",
	SpanDSM:      "dsm-xfer",
	SpanSwapOut:  "swap-out",
	SpanSwapIn:   "swap-in",
}

func (k SpanKind) String() string {
	if k < numSpanKinds {
		return spanKindNames[k]
	}
	return "span?"
}

// SpanKindByName resolves a span-kind name (the inverse of String).
func SpanKindByName(name string) (SpanKind, bool) {
	for k, n := range spanKindNames {
		if n == name {
			return SpanKind(k), true
		}
	}
	return SpanNone, false
}

// Span is one recorded interval. Start and End are cycle stamps on the
// recording machine's clock; End == 0 means the span is still open (or
// the recorder wrapped before it closed). Parent == 0 marks a root.
type Span struct {
	Trace  TraceID
	ID     SpanID
	Parent SpanID
	Env    uint32
	Kind   SpanKind
	Start  uint64
	End    uint64
	// Arg is kind-specific payload: bytes for tx/rx spans, the procedure
	// identifier for IPC, the callee environment for PCT.
	Arg uint64
}

// SourcedSpan is a Span tagged with the machine it was recorded on — the
// unit of a merged fleet stream.
type SourcedSpan struct {
	Machine string
	Span
}

// SpanRef is a handle onto an open span: the absolute emission index (for
// the in-place End stamp) plus the propagated context. The zero SpanRef
// is inert — End on it is a no-op and Ctx is the zero context — so
// disabled recorders cost callers a single nil check.
type SpanRef struct {
	ctx SpanContext
	idx uint64 // 1 + absolute index into the emission sequence
}

// Ctx returns the context to propagate to children of this span.
func (r SpanRef) Ctx() SpanContext { return r.ctx }

// SpanRecorder is the span ring buffer. A nil *SpanRecorder is a valid,
// disabled recorder: Begin returns the zero SpanRef, so every propagation
// site degrades to "no context" with no other branches.
type SpanRecorder struct {
	buf   []Span
	total uint64
	ids   uint64 // splitmix64 state: deterministic ID stream
}

// NewSpans makes a span recorder with the given ring capacity. The salt
// separates ID streams of different machines: two recorders with
// different salts never allocate colliding IDs in practice, and the same
// salt and call sequence always reproduces the same IDs — determinism is
// the point.
func NewSpans(capacity int, salt uint64) *SpanRecorder {
	if capacity < 1 {
		capacity = 1
	}
	return &SpanRecorder{buf: make([]Span, capacity), ids: salt ^ 0x9E3779B97F4A7C15}
}

// nextID draws the next identifier from the deterministic stream. IDs are
// never zero (zero means "absent" everywhere).
func (r *SpanRecorder) nextID() uint64 {
	for {
		r.ids += 0x9E3779B97F4A7C15
		z := r.ids
		z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
		z = (z ^ z>>27) * 0x94D049BB133111EB
		z ^= z >> 31
		if z != 0 {
			return z
		}
	}
}

// Begin opens a span. A zero parent context starts a new trace (the span
// becomes the root); otherwise the span joins the parent's trace as its
// child. Zero allocations, no clock access — the caller passes the cycle
// stamp it already has.
func (r *SpanRecorder) Begin(cycle uint64, kind SpanKind, env uint32, parent SpanContext, arg uint64) SpanRef {
	if r == nil {
		return SpanRef{}
	}
	id := SpanID(r.nextID())
	trace := parent.Trace
	var par SpanID
	if parent.Valid() {
		par = parent.Span
	} else {
		trace = TraceID(r.nextID())
	}
	r.buf[r.total%uint64(len(r.buf))] = Span{
		Trace: trace, ID: id, Parent: par,
		Env: env, Kind: kind, Start: cycle, Arg: arg,
	}
	r.total++
	return SpanRef{ctx: SpanContext{Trace: trace, Span: id}, idx: r.total}
}

// End stamps a span's closing cycle in place. If the ring has wrapped
// past the span since Begin, the stamp is dropped (the span itself is
// already gone).
func (r *SpanRecorder) End(ref SpanRef, cycle uint64) {
	if r == nil || ref.idx == 0 || ref.idx > r.total || r.total-ref.idx >= uint64(len(r.buf)) {
		return
	}
	slot := &r.buf[(ref.idx-1)%uint64(len(r.buf))]
	if slot.ID == ref.ctx.Span {
		slot.End = cycle
	}
}

// Total reports how many spans were ever begun.
func (r *SpanRecorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.total
}

// Len reports how many spans are currently held (≤ capacity).
func (r *SpanRecorder) Len() int {
	if r == nil {
		return 0
	}
	if r.total < uint64(len(r.buf)) {
		return int(r.total)
	}
	return len(r.buf)
}

// Dropped reports how many spans were overwritten by wraparound.
func (r *SpanRecorder) Dropped() uint64 {
	if r == nil || r.total < uint64(len(r.buf)) {
		return 0
	}
	return r.total - uint64(len(r.buf))
}

// Spans returns the held window, oldest first (a copy, like
// Recorder.Events).
func (r *SpanRecorder) Spans() []Span {
	if r == nil {
		return nil
	}
	n := uint64(len(r.buf))
	if r.total <= n {
		return append([]Span(nil), r.buf[:r.total]...)
	}
	start := r.total % n
	out := make([]Span, 0, n)
	out = append(out, r.buf[start:]...)
	out = append(out, r.buf[:start]...)
	return out
}

// Reset empties the recorder without resizing or reseeding: the ID stream
// continues, so spans recorded after a Reset never collide with spans
// exported before it.
func (r *SpanRecorder) Reset() {
	if r != nil {
		r.total = 0
	}
}
