package ktrace

import (
	"bytes"
	"strings"
	"testing"
)

// TestJSONLRoundTrip: every exported line parses back into the event that
// produced it — type, environment, cycle stamp, and args all survive.
func TestJSONLRoundTrip(t *testing.T) {
	r := New(64)
	emitted := []Event{
		{Cycle: 0, Kind: KindEnvCreate, Env: 1, Arg0: 7},
		{Cycle: 12, Kind: KindSyscallEnter, Env: 1, Arg0: 3, Arg1: 0xffff_ffff},
		{Cycle: 40, Kind: KindSyscallExit, Env: 1, Arg0: 3},
		{Cycle: 55, Kind: KindTLBMiss, Env: 2, Arg0: 0x1000, Arg1: 1},
		{Cycle: 90, Kind: KindPktDeliver, Env: 3, Arg0: 60},
		{Cycle: 1 << 40, Kind: KindEnvDestroy, Env: 2, Arg0: 5, Arg1: 1, Arg2: 2},
	}
	for _, e := range emitted {
		r.Emit(e.Cycle, e.Kind, e.Env, e.Arg0, e.Arg1, e.Arg2)
	}

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, r.Events()); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != len(emitted) {
		t.Fatalf("exported %d lines, want %d", got, len(emitted))
	}

	parsed, err := ParseJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(emitted) {
		t.Fatalf("parsed %d events, want %d", len(parsed), len(emitted))
	}
	for i, want := range emitted {
		if parsed[i] != want {
			t.Errorf("event %d: round-trip %+v, want %+v", i, parsed[i], want)
		}
	}
}

func TestKindByNameCoversAllKinds(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		got, ok := KindByName(k.String())
		if !ok || got != k {
			t.Errorf("KindByName(%q) = %v, %v; want %v, true", k.String(), got, ok, k)
		}
	}
	if _, ok := KindByName("no-such-kind"); ok {
		t.Error("KindByName accepted garbage")
	}
}

func TestParseJSONLRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"not json\n",
		`{"cycle": 1, "kind": "martian", "env": 0}` + "\n",
	} {
		if _, err := ParseJSONL(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseJSONL accepted %q", bad)
		}
	}
	// Blank lines are tolerated (trailing newline artifacts).
	events, err := ParseJSONL(strings.NewReader("\n\n"))
	if err != nil || len(events) != 0 {
		t.Errorf("blank input: got %v, %v; want empty, nil", events, err)
	}
}
