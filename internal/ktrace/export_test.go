package ktrace

import (
	"bytes"
	"strings"
	"testing"
)

// TestJSONLRoundTrip: every exported line parses back into the event that
// produced it — type, environment, cycle stamp, and args all survive.
func TestJSONLRoundTrip(t *testing.T) {
	r := New(64)
	emitted := []Event{
		{Cycle: 0, Kind: KindEnvCreate, Env: 1, Arg0: 7},
		{Cycle: 12, Kind: KindSyscallEnter, Env: 1, Arg0: 3, Arg1: 0xffff_ffff},
		{Cycle: 40, Kind: KindSyscallExit, Env: 1, Arg0: 3},
		{Cycle: 55, Kind: KindTLBMiss, Env: 2, Arg0: 0x1000, Arg1: 1},
		{Cycle: 90, Kind: KindPktDeliver, Env: 3, Arg0: 60},
		{Cycle: 1 << 40, Kind: KindEnvDestroy, Env: 2, Arg0: 5, Arg1: 1, Arg2: 2},
	}
	for _, e := range emitted {
		r.Emit(e.Cycle, e.Kind, e.Env, e.Arg0, e.Arg1, e.Arg2)
	}

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, r.Events()); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != len(emitted) {
		t.Fatalf("exported %d lines, want %d", got, len(emitted))
	}

	parsed, truncated, err := ParseJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if truncated != 0 {
		t.Errorf("complete stream reported %d truncated lines", truncated)
	}
	if len(parsed) != len(emitted) {
		t.Fatalf("parsed %d events, want %d", len(parsed), len(emitted))
	}
	for i, want := range emitted {
		if parsed[i] != want {
			t.Errorf("event %d: round-trip %+v, want %+v", i, parsed[i], want)
		}
	}
}

func TestKindByNameCoversAllKinds(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		got, ok := KindByName(k.String())
		if !ok || got != k {
			t.Errorf("KindByName(%q) = %v, %v; want %v, true", k.String(), got, ok, k)
		}
	}
	if _, ok := KindByName("no-such-kind"); ok {
		t.Error("KindByName accepted garbage")
	}
}

func TestParseJSONLRejectsGarbage(t *testing.T) {
	valid := `{"cycle": 5, "kind": "syscall-enter", "env": 1}` + "\n"
	for _, bad := range []string{
		// Garbage with valid lines after it is corruption, not truncation.
		"not json\n" + valid,
		// An unknown kind name is a schema error wherever it appears.
		`{"cycle": 1, "kind": "martian", "env": 0}` + "\n",
		valid + `{"cycle": 2, "kind": "martian", "env": 0}` + "\n",
	} {
		if _, _, err := ParseJSONL(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseJSONL accepted %q", bad)
		}
	}
	// Blank lines are tolerated (trailing newline artifacts).
	events, truncated, err := ParseJSONL(strings.NewReader("\n\n"))
	if err != nil || truncated != 0 || len(events) != 0 {
		t.Errorf("blank input: got %v, %d, %v; want empty, 0, nil", events, truncated, err)
	}
}

// TestParseJSONLTruncatedTail: a crash-time dump whose final line was cut
// mid-write parses cleanly — the complete prefix comes back, the ragged
// tail is counted, not fatal.
func TestParseJSONLTruncatedTail(t *testing.T) {
	complete := `{"cycle": 5, "kind": "syscall-enter", "env": 1}` + "\n" +
		`{"cycle": 9, "kind": "syscall-exit", "env": 1}` + "\n"
	for _, tail := range []string{
		`{"cycle": 12, "kind": "tlb-mi`,        // cut inside the line
		`{"cycle": 12, "kind": "tlb-miss", "e`, // cut inside a key
		`{`,
	} {
		events, truncated, err := ParseJSONL(strings.NewReader(complete + tail))
		if err != nil {
			t.Fatalf("tail %q: %v", tail, err)
		}
		if truncated != 1 {
			t.Errorf("tail %q: truncated = %d, want 1", tail, truncated)
		}
		if len(events) != 2 {
			t.Errorf("tail %q: parsed %d events, want 2", tail, len(events))
		}
	}
}

// TestJSONLSourcedRoundTrip: the machine dimension survives the wire, and
// untagged lines come back with an empty machine.
func TestJSONLSourcedRoundTrip(t *testing.T) {
	emitted := []SourcedEvent{
		{Machine: "A", Event: Event{Cycle: 1, Kind: KindSyscallEnter, Env: 1, Arg0: 3}},
		{Machine: "B", Event: Event{Cycle: 2, Kind: KindPktDeliver, Env: 2, Arg0: 60}},
		{Machine: "", Event: Event{Cycle: 3, Kind: KindEnvCreate, Env: 3}},
	}
	var buf bytes.Buffer
	if err := WriteJSONLSourced(&buf, emitted); err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), `"machine"`) != 2 {
		t.Errorf("machine field should be omitted when empty:\n%s", buf.String())
	}
	parsed, truncated, err := ParseJSONLSourced(&buf)
	if err != nil || truncated != 0 {
		t.Fatalf("parse: %v (truncated %d)", err, truncated)
	}
	if len(parsed) != len(emitted) {
		t.Fatalf("parsed %d events, want %d", len(parsed), len(emitted))
	}
	for i, want := range emitted {
		if parsed[i] != want {
			t.Errorf("event %d: round-trip %+v, want %+v", i, parsed[i], want)
		}
	}
}
