package ktrace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Exporters. Three formats cover the three audiences: WriteText for eyes,
// WriteJSONL for scripts, and WriteChrome for the chrome://tracing /
// Perfetto timeline UI.

// WriteText renders events as an aligned human-readable log:
//
//	cycle        env  kind             args
func WriteText(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%12s  %-5s  %-16s %s\n", "cycle", "env", "event", "args")
	for _, e := range events {
		fmt.Fprintf(bw, "%12d  %-5d  %-16s %d %d %d\n", e.Cycle, e.Env, e.Kind, e.Arg0, e.Arg1, e.Arg2)
	}
	return bw.Flush()
}

// jsonEvent is the JSONL wire form of an Event. Machine is the source
// dimension of merged multi-machine streams (internal/fleet); single-
// machine traces leave it empty and the field is omitted, so old traces
// and old readers are untouched.
type jsonEvent struct {
	Machine string `json:"machine,omitempty"`
	Cycle   uint64 `json:"cycle"`
	Kind    string `json:"kind"`
	Env     uint32 `json:"env"`
	Arg0    uint64 `json:"arg0,omitempty"`
	Arg1    uint64 `json:"arg1,omitempty"`
	Arg2    uint64 `json:"arg2,omitempty"`
}

// SourcedEvent is an Event tagged with the machine it was recorded on —
// the unit of a merged fleet stream. Machine "" means "the only machine"
// (a plain single-recorder trace).
type SourcedEvent struct {
	Machine string
	Event
}

// WriteJSONL writes one JSON object per line, in event order.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range events {
		if err := enc.Encode(jsonEvent{Cycle: e.Cycle, Kind: e.Kind.String(), Env: e.Env, Arg0: e.Arg0, Arg1: e.Arg1, Arg2: e.Arg2}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteJSONLSourced writes a merged multi-machine stream, one JSON object
// per line with the machine dimension on every tagged event.
func WriteJSONLSourced(w io.Writer, events []SourcedEvent) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range events {
		if err := enc.Encode(jsonEvent{Machine: e.Machine, Cycle: e.Cycle, Kind: e.Kind.String(), Env: e.Env, Arg0: e.Arg0, Arg1: e.Arg1, Arg2: e.Arg2}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// kindsByName is the inverse of kindNames, for parsing exported traces.
var kindsByName = func() map[string]Kind {
	m := make(map[string]Kind, int(numKinds))
	for k, name := range kindNames {
		m[name] = Kind(k)
	}
	return m
}()

// KindByName resolves an event-kind name (the inverse of Kind.String).
func KindByName(name string) (Kind, bool) {
	k, ok := kindsByName[name]
	return k, ok
}

// ParseJSONL reads a WriteJSONL / WriteJSONLSourced stream back into
// events, so scripts (and tests) can round-trip a trace instead of
// scraping text. Blank lines are skipped and any machine tag is
// discarded (use ParseJSONLSourced to keep it).
//
// A final line that is not valid JSON is treated as a truncated tail,
// not an error: flight-recorder dumps are read at crash time, exactly
// when the writer may have died mid-line. The skipped-line count (0 or
// 1) is returned so callers can report the loss. Garbage *before* the
// last line, or a well-formed line with an unknown kind name, is still
// an error.
func ParseJSONL(r io.Reader) (events []Event, truncated int, err error) {
	sourced, truncated, err := ParseJSONLSourced(r)
	if err != nil {
		return nil, truncated, err
	}
	if sourced == nil {
		return nil, truncated, nil
	}
	events = make([]Event, len(sourced))
	for i, se := range sourced {
		events[i] = se.Event
	}
	return events, truncated, nil
}

// ParseJSONLSourced is ParseJSONL keeping the machine dimension of each
// line (empty for plain single-machine traces).
func ParseJSONLSourced(r io.Reader) (events []SourcedEvent, truncated int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	// A malformed line is held pending: if it turns out to be the last
	// non-blank line it was a truncated tail (skip, count); if anything
	// follows it, the file is corrupt (error).
	var pending error
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		if pending != nil {
			return nil, 0, pending
		}
		var je jsonEvent
		if err := json.Unmarshal(text, &je); err != nil {
			pending = fmt.Errorf("ktrace: line %d: %w", line, err)
			continue
		}
		kind, ok := KindByName(je.Kind)
		if !ok {
			return nil, 0, fmt.Errorf("ktrace: line %d: unknown event kind %q", line, je.Kind)
		}
		events = append(events, SourcedEvent{Machine: je.Machine,
			Event: Event{Cycle: je.Cycle, Kind: kind, Env: je.Env, Arg0: je.Arg0, Arg1: je.Arg1, Arg2: je.Arg2}})
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("ktrace: %w", err)
	}
	if pending != nil {
		truncated = 1
	}
	return events, truncated, nil
}

// chromeEvent is one entry of the Chrome trace_event "JSON Object Format"
// (the {"traceEvents": [...]} envelope), loadable in chrome://tracing and
// in Perfetto's legacy-trace importer.
type chromeEvent struct {
	Name  string         `json:"name"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"` // microseconds
	Dur   *float64       `json:"dur,omitempty"`
	Pid   uint32         `json:"pid"`
	Tid   uint32         `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome exports events in Chrome trace_event format. mhz converts
// cycle stamps to microseconds (the trace_event time base); pass the
// simulated machine's clock rate. Syscall enter/exit pairs become complete
// ("X") duration slices; everything else is an instant event on the
// responsible environment's track. Environment 0 is the kernel itself
// (drops, decisions with no owner).
func WriteChrome(w io.Writer, events []Event, mhz float64) error {
	if mhz <= 0 {
		mhz = 1
	}
	us := func(cycle uint64) float64 { return float64(cycle) / mhz }

	out := make([]chromeEvent, 0, len(events)+8)
	envs := map[uint32]bool{}
	// pending syscall-enter per env, to pair into "X" slices.
	pending := map[uint32]Event{}

	flushPending := func(env uint32) {
		if enter, ok := pending[env]; ok {
			// Unmatched enter (window edge): degrade to an instant.
			out = append(out, chromeEvent{
				Name: enter.Kind.String(), Ph: "i", Ts: us(enter.Cycle),
				Pid: enter.Env, Tid: enter.Env, Scope: "t",
				Args: map[string]any{"code": enter.Arg0, "cycle": enter.Cycle},
			})
			delete(pending, env)
		}
	}

	for _, e := range events {
		envs[e.Env] = true
		switch e.Kind {
		case KindSyscallEnter:
			flushPending(e.Env)
			pending[e.Env] = e
		case KindSyscallExit:
			if enter, ok := pending[e.Env]; ok && enter.Arg0 == e.Arg0 {
				dur := us(e.Cycle) - us(enter.Cycle)
				out = append(out, chromeEvent{
					Name: fmt.Sprintf("syscall %d", e.Arg0), Ph: "X",
					Ts: us(enter.Cycle), Dur: &dur,
					Pid: e.Env, Tid: e.Env,
					Args: map[string]any{"code": e.Arg0, "cycles": e.Cycle - enter.Cycle},
				})
				delete(pending, e.Env)
				continue
			}
			fallthrough
		default:
			out = append(out, chromeEvent{
				Name: e.Kind.String(), Ph: "i", Ts: us(e.Cycle),
				Pid: e.Env, Tid: e.Env, Scope: "t",
				Args: map[string]any{"arg0": e.Arg0, "arg1": e.Arg1, "arg2": e.Arg2, "cycle": e.Cycle},
			})
		}
	}
	for env := range pending {
		flushPending(env)
	}

	// Stable metadata order keeps the output diffable.
	ids := make([]uint32, 0, len(envs))
	for env := range envs {
		ids = append(ids, env)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	meta := make([]chromeEvent, 0, len(ids))
	for _, env := range ids {
		name := fmt.Sprintf("env %d", env)
		if env == 0 {
			name = "kernel"
		}
		meta = append(meta, chromeEvent{
			Name: "process_name", Ph: "M", Pid: env, Tid: env,
			Args: map[string]any{"name": name},
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: append(meta, out...), DisplayTimeUnit: "ms"})
}

// WriteChromeMerged exports a merged multi-machine stream in Chrome
// trace_event format with one process track per machine: pid = 1 + the
// machine's index in machines, tid = the responsible environment. The
// machines slice fixes the pid assignment (and the track order in the
// UI); events whose Machine is not listed are dropped. Everything else
// follows WriteChrome: syscall enter/exit pairs become complete slices,
// the rest are instants, and the output is deterministic — the same
// event stream always serializes to the same bytes.
func WriteChromeMerged(w io.Writer, events []SourcedEvent, machines []string, mhz float64) error {
	if mhz <= 0 {
		mhz = 1
	}
	us := func(cycle uint64) float64 { return float64(cycle) / mhz }
	pids := make(map[string]uint32, len(machines))
	for i, name := range machines {
		pids[name] = uint32(i + 1)
	}

	type track struct {
		pid, tid uint32
	}
	out := make([]chromeEvent, 0, len(events)+8)
	tracks := map[track]bool{}
	pending := map[track]Event{}

	flushPending := func(tr track) {
		if enter, ok := pending[tr]; ok {
			out = append(out, chromeEvent{
				Name: enter.Kind.String(), Ph: "i", Ts: us(enter.Cycle),
				Pid: tr.pid, Tid: tr.tid, Scope: "t",
				Args: map[string]any{"code": enter.Arg0, "cycle": enter.Cycle},
			})
			delete(pending, tr)
		}
	}

	for _, se := range events {
		pid, ok := pids[se.Machine]
		if !ok {
			continue
		}
		e := se.Event
		tr := track{pid: pid, tid: e.Env}
		tracks[tr] = true
		switch e.Kind {
		case KindSyscallEnter:
			flushPending(tr)
			pending[tr] = e
		case KindSyscallExit:
			if enter, ok := pending[tr]; ok && enter.Arg0 == e.Arg0 {
				dur := us(e.Cycle) - us(enter.Cycle)
				out = append(out, chromeEvent{
					Name: fmt.Sprintf("syscall %d", e.Arg0), Ph: "X",
					Ts: us(enter.Cycle), Dur: &dur,
					Pid: tr.pid, Tid: tr.tid,
					Args: map[string]any{"code": e.Arg0, "cycles": e.Cycle - enter.Cycle},
				})
				delete(pending, tr)
				continue
			}
			fallthrough
		default:
			out = append(out, chromeEvent{
				Name: e.Kind.String(), Ph: "i", Ts: us(e.Cycle),
				Pid: tr.pid, Tid: tr.tid, Scope: "t",
				Args: map[string]any{"arg0": e.Arg0, "arg1": e.Arg1, "arg2": e.Arg2, "cycle": e.Cycle},
			})
		}
	}
	// Window-edge unmatched enters, in deterministic track order.
	open := make([]track, 0, len(pending))
	for tr := range pending {
		open = append(open, tr)
	}
	sort.Slice(open, func(i, j int) bool {
		if open[i].pid != open[j].pid {
			return open[i].pid < open[j].pid
		}
		return open[i].tid < open[j].tid
	})
	for _, tr := range open {
		flushPending(tr)
	}

	// Metadata: one process_name per machine (every machine listed gets a
	// track, even if it recorded nothing this window), and one
	// thread_name per (machine, env) seen.
	seen := make([]track, 0, len(tracks))
	for tr := range tracks {
		seen = append(seen, tr)
	}
	sort.Slice(seen, func(i, j int) bool {
		if seen[i].pid != seen[j].pid {
			return seen[i].pid < seen[j].pid
		}
		return seen[i].tid < seen[j].tid
	})
	meta := make([]chromeEvent, 0, len(machines)+len(seen))
	for i, name := range machines {
		meta = append(meta, chromeEvent{
			Name: "process_name", Ph: "M", Pid: uint32(i + 1),
			Args: map[string]any{"name": "machine " + name},
		})
	}
	for _, tr := range seen {
		name := fmt.Sprintf("env %d", tr.tid)
		if tr.tid == 0 {
			name = "kernel"
		}
		meta = append(meta, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: tr.pid, Tid: tr.tid,
			Args: map[string]any{"name": name},
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: append(meta, out...), DisplayTimeUnit: "ms"})
}
