package ktrace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Exporters. Three formats cover the three audiences: WriteText for eyes,
// WriteJSONL for scripts, and WriteChrome for the chrome://tracing /
// Perfetto timeline UI.

// WriteText renders events as an aligned human-readable log:
//
//	cycle        env  kind             args
func WriteText(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%12s  %-5s  %-16s %s\n", "cycle", "env", "event", "args")
	for _, e := range events {
		fmt.Fprintf(bw, "%12d  %-5d  %-16s %d %d %d\n", e.Cycle, e.Env, e.Kind, e.Arg0, e.Arg1, e.Arg2)
	}
	return bw.Flush()
}

// jsonEvent is the JSONL wire form of an Event.
type jsonEvent struct {
	Cycle uint64 `json:"cycle"`
	Kind  string `json:"kind"`
	Env   uint32 `json:"env"`
	Arg0  uint64 `json:"arg0,omitempty"`
	Arg1  uint64 `json:"arg1,omitempty"`
	Arg2  uint64 `json:"arg2,omitempty"`
}

// WriteJSONL writes one JSON object per line, in event order.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range events {
		if err := enc.Encode(jsonEvent{Cycle: e.Cycle, Kind: e.Kind.String(), Env: e.Env, Arg0: e.Arg0, Arg1: e.Arg1, Arg2: e.Arg2}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// kindsByName is the inverse of kindNames, for parsing exported traces.
var kindsByName = func() map[string]Kind {
	m := make(map[string]Kind, int(numKinds))
	for k, name := range kindNames {
		m[name] = Kind(k)
	}
	return m
}()

// KindByName resolves an event-kind name (the inverse of Kind.String).
func KindByName(name string) (Kind, bool) {
	k, ok := kindsByName[name]
	return k, ok
}

// ParseJSONL reads a WriteJSONL stream back into events, so scripts (and
// tests) can round-trip a trace instead of scraping text. Blank lines are
// skipped; an unknown kind name or malformed line is an error.
func ParseJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var je jsonEvent
		if err := json.Unmarshal(text, &je); err != nil {
			return nil, fmt.Errorf("ktrace: line %d: %w", line, err)
		}
		kind, ok := KindByName(je.Kind)
		if !ok {
			return nil, fmt.Errorf("ktrace: line %d: unknown event kind %q", line, je.Kind)
		}
		out = append(out, Event{Cycle: je.Cycle, Kind: kind, Env: je.Env, Arg0: je.Arg0, Arg1: je.Arg1, Arg2: je.Arg2})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ktrace: %w", err)
	}
	return out, nil
}

// chromeEvent is one entry of the Chrome trace_event "JSON Object Format"
// (the {"traceEvents": [...]} envelope), loadable in chrome://tracing and
// in Perfetto's legacy-trace importer.
type chromeEvent struct {
	Name  string         `json:"name"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"` // microseconds
	Dur   *float64       `json:"dur,omitempty"`
	Pid   uint32         `json:"pid"`
	Tid   uint32         `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome exports events in Chrome trace_event format. mhz converts
// cycle stamps to microseconds (the trace_event time base); pass the
// simulated machine's clock rate. Syscall enter/exit pairs become complete
// ("X") duration slices; everything else is an instant event on the
// responsible environment's track. Environment 0 is the kernel itself
// (drops, decisions with no owner).
func WriteChrome(w io.Writer, events []Event, mhz float64) error {
	if mhz <= 0 {
		mhz = 1
	}
	us := func(cycle uint64) float64 { return float64(cycle) / mhz }

	out := make([]chromeEvent, 0, len(events)+8)
	envs := map[uint32]bool{}
	// pending syscall-enter per env, to pair into "X" slices.
	pending := map[uint32]Event{}

	flushPending := func(env uint32) {
		if enter, ok := pending[env]; ok {
			// Unmatched enter (window edge): degrade to an instant.
			out = append(out, chromeEvent{
				Name: enter.Kind.String(), Ph: "i", Ts: us(enter.Cycle),
				Pid: enter.Env, Tid: enter.Env, Scope: "t",
				Args: map[string]any{"code": enter.Arg0, "cycle": enter.Cycle},
			})
			delete(pending, env)
		}
	}

	for _, e := range events {
		envs[e.Env] = true
		switch e.Kind {
		case KindSyscallEnter:
			flushPending(e.Env)
			pending[e.Env] = e
		case KindSyscallExit:
			if enter, ok := pending[e.Env]; ok && enter.Arg0 == e.Arg0 {
				dur := us(e.Cycle) - us(enter.Cycle)
				out = append(out, chromeEvent{
					Name: fmt.Sprintf("syscall %d", e.Arg0), Ph: "X",
					Ts: us(enter.Cycle), Dur: &dur,
					Pid: e.Env, Tid: e.Env,
					Args: map[string]any{"code": e.Arg0, "cycles": e.Cycle - enter.Cycle},
				})
				delete(pending, e.Env)
				continue
			}
			fallthrough
		default:
			out = append(out, chromeEvent{
				Name: e.Kind.String(), Ph: "i", Ts: us(e.Cycle),
				Pid: e.Env, Tid: e.Env, Scope: "t",
				Args: map[string]any{"arg0": e.Arg0, "arg1": e.Arg1, "arg2": e.Arg2, "cycle": e.Cycle},
			})
		}
	}
	for env := range pending {
		flushPending(env)
	}

	// Stable metadata order keeps the output diffable.
	ids := make([]uint32, 0, len(envs))
	for env := range envs {
		ids = append(ids, env)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	meta := make([]chromeEvent, 0, len(ids))
	for _, env := range ids {
		name := fmt.Sprintf("env %d", env)
		if env == 0 {
			name = "kernel"
		}
		meta = append(meta, chromeEvent{
			Name: "process_name", Ph: "M", Pid: env, Tid: env,
			Args: map[string]any{"name": name},
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: append(meta, out...), DisplayTimeUnit: "ms"})
}
