// Package ktrace is the kernel flight recorder: a fixed-capacity ring
// buffer of typed events stamped with the simulated cycle clock. The
// paper's thesis is that resource management should be *visible* to
// applications; ktrace is the observability half of that argument — every
// kernel decision (dispatch, delivery, revocation, reclamation) leaves a
// cycle-stamped record naming the environment it was made for.
//
// The recorder is deliberately dumb on the hot path: Emit writes one
// fixed-size struct into a preallocated buffer and increments a counter.
// It never allocates, never locks (the simulation is single-threaded by
// construction), and never touches the simulated clock — tracing on or
// off, the cost model is byte-identical.
package ktrace

// Kind is the event type.
type Kind uint16

// Event kinds. The taxonomy follows the kernel's decision points: control
// transfer (syscalls, exceptions, context switches), multiplexing (TLB,
// packets, disk), and the resource life cycle (bind/unbind, revocation,
// environment create/destroy).
const (
	KindNone Kind = iota

	// Control transfer.
	KindSyscallEnter // Arg0 = syscall code
	KindSyscallExit  // Arg0 = syscall code
	KindException    // Arg0 = cause, Arg1 = EPC, Arg2 = BadVAddr
	KindCtxSwitch    // Env = outgoing, Arg0 = incoming EnvID
	KindSliceExpiry  // timer tick ended Env's slice
	KindYield        // Arg0 = target EnvID (0 = next in vector)
	KindProtCall     // Env = caller, Arg0 = callee, Arg1 = 1 if async

	// Address translation.
	KindTLBMiss   // Arg0 = VPN, Arg1 = 1 if store
	KindSTLBHit   // Arg0 = VPN (absorbed in-kernel)
	KindTLBUpcall // Arg0 = VPN (miss reached the application)

	// Network multiplexing.
	KindPktClassify // Arg0 = frame bytes, Arg1 = classification cycles
	KindPktDeliver  // Env = endpoint owner, Arg0 = frame bytes
	KindPktDrop     // Arg0 = frame bytes (no filter accepted)
	KindASHRun      // Env = endpoint owner, Arg0 = frame bytes

	// Resource life cycle.
	KindEnvCreate    // Env = new environment
	KindEnvKill      // Arg0 = cause, Arg1 = EPC of the fatal trap
	KindEnvDestroy   // Arg0 = frames freed, Arg1 = extents freed, Arg2 = endpoints freed
	KindFrameBind    // Env = owner, Arg0 = frame
	KindFrameUnbind  // Env = owner, Arg0 = frame
	KindExtentAlloc  // Env = owner, Arg0 = start block, Arg1 = nblocks
	KindExtentFree   // Env = owner, Arg0 = start block, Arg1 = nblocks
	KindEndpointBind // Env = owner (filter installed)
	KindEndpointUnbind
	KindRevokeRequest // Env = owner, Arg0 = frame (visible upcall)
	KindRevokeComply  // Env = owner, Arg0 = frame (library OS released it)
	KindRevokeAbort   // Env = owner, Arg0 = frame (kernel repossessed)

	// Stable storage.
	KindDiskRead  // Env = requester, Arg0 = block, Arg1 = frame
	KindDiskWrite // Env = requester, Arg0 = block, Arg1 = frame

	// Stable storage, continued.
	KindDiskFlush // Env = requester, Arg0 = first block, Arg1 = blocks made stable

	// Faults.
	KindNICOverflow // a frame died at the receive ring (Arg0 = drops so far)
	KindFaultInject // Arg0 = fault.Kind, Arg1 = victim (block/frame bytes/env)

	// Crash-stop and recovery (whole-machine power events; emitted by the
	// harness around reboots, and by Mount recovery).
	KindPowerFail  // Arg0 = cached writes kept, Arg1 = cached writes lost
	KindReboot     // Arg0 = reboot ordinal
	KindFSRecovery // Arg0 = txns replayed, Arg1 = txns rolled back

	numKinds
)

var kindNames = [numKinds]string{
	KindNone:           "none",
	KindSyscallEnter:   "syscall-enter",
	KindSyscallExit:    "syscall-exit",
	KindException:      "exception",
	KindCtxSwitch:      "ctx-switch",
	KindSliceExpiry:    "slice-expiry",
	KindYield:          "yield",
	KindProtCall:       "prot-call",
	KindTLBMiss:        "tlb-miss",
	KindSTLBHit:        "stlb-hit",
	KindTLBUpcall:      "tlb-upcall",
	KindPktClassify:    "pkt-classify",
	KindPktDeliver:     "pkt-deliver",
	KindPktDrop:        "pkt-drop",
	KindASHRun:         "ash-run",
	KindEnvCreate:      "env-create",
	KindEnvKill:        "env-kill",
	KindEnvDestroy:     "env-destroy",
	KindFrameBind:      "frame-bind",
	KindFrameUnbind:    "frame-unbind",
	KindExtentAlloc:    "extent-alloc",
	KindExtentFree:     "extent-free",
	KindEndpointBind:   "endpoint-bind",
	KindEndpointUnbind: "endpoint-unbind",
	KindRevokeRequest:  "revoke-request",
	KindRevokeComply:   "revoke-comply",
	KindRevokeAbort:    "revoke-abort",
	KindDiskRead:       "disk-read",
	KindDiskWrite:      "disk-write",
	KindDiskFlush:      "disk-flush",
	KindNICOverflow:    "nic-overflow",
	KindFaultInject:    "fault-inject",
	KindPowerFail:      "power-fail",
	KindReboot:         "reboot",
	KindFSRecovery:     "fs-recovery",
}

func (k Kind) String() string {
	if k < numKinds {
		return kindNames[k]
	}
	return "kind?"
}

// Event is one flight-recorder record. Env is the environment the kernel
// made the decision *for* (the responsible party), which is not always the
// running one — a packet delivery is attributed to the endpoint's owner
// even though it happens in interrupt context.
type Event struct {
	Cycle uint64
	Kind  Kind
	Env   uint32
	Arg0  uint64
	Arg1  uint64
	Arg2  uint64
}

// Recorder is the ring buffer. A nil *Recorder is a valid, disabled
// recorder: every method on it is a no-op, so instrumentation sites need
// only a single pointer check.
type Recorder struct {
	buf   []Event
	total uint64 // events ever emitted; buf index = total % cap
	on    bool
}

// New makes a recorder with the given capacity (events kept before the
// oldest are overwritten), enabled.
func New(capacity int) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	return &Recorder{buf: make([]Event, capacity), on: true}
}

// Enabled reports whether Emit records anything.
func (r *Recorder) Enabled() bool { return r != nil && r.on }

// SetEnabled pauses or resumes recording (the buffer is kept).
func (r *Recorder) SetEnabled(on bool) {
	if r != nil {
		r.on = on
	}
}

// Emit records one event. Zero allocations; overwrites the oldest event
// once the ring is full.
func (r *Recorder) Emit(cycle uint64, kind Kind, env uint32, a0, a1, a2 uint64) {
	if r == nil || !r.on {
		return
	}
	r.buf[r.total%uint64(len(r.buf))] = Event{Cycle: cycle, Kind: kind, Env: env, Arg0: a0, Arg1: a1, Arg2: a2}
	r.total++
}

// Len reports how many events are currently held (≤ capacity).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	if r.total < uint64(len(r.buf)) {
		return int(r.total)
	}
	return len(r.buf)
}

// Total reports how many events were ever emitted.
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.total
}

// Dropped reports how many events were overwritten by wraparound.
func (r *Recorder) Dropped() uint64 {
	if r == nil || r.total < uint64(len(r.buf)) {
		return 0
	}
	return r.total - uint64(len(r.buf))
}

// Events returns the held window, oldest first. Cycle stamps are
// non-decreasing because the simulated clock never runs backwards within
// one machine; the copy means callers can export while the kernel keeps
// recording.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	n := uint64(len(r.buf))
	if r.total <= n {
		return append([]Event(nil), r.buf[:r.total]...)
	}
	start := r.total % n
	out := make([]Event, 0, n)
	out = append(out, r.buf[start:]...)
	out = append(out, r.buf[:start]...)
	return out
}

// Reset empties the recorder without resizing.
func (r *Recorder) Reset() {
	if r != nil {
		r.total = 0
	}
}
