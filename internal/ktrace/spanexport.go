package ktrace

import (
	"encoding/json"
	"io"
)

// Span export: the merged span stream as a Chrome/Perfetto timeline.
// Each span is a complete ("X") slice on its machine's process track
// (pid = 1 + machine index, tid = env, matching WriteChromeMerged), and
// each parent→child edge is a flow-event pair ("s" at the parent, "f" at
// the child) so the UI draws arrows along the causal chain — including
// across machine tracks, which is the whole point: one request, one
// visible path through the fleet.

// chromeSpanEvent extends the trace_event shape with the flow-binding
// fields (cat+name+id identify a flow; bp:"e" binds the finish to the
// enclosing slice).
type chromeSpanEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	ID    uint64         `json:"id,omitempty"`
	BP    string         `json:"bp,omitempty"`
	Ts    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	Pid   uint32         `json:"pid"`
	Tid   uint32         `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeSpanTrace struct {
	TraceEvents     []chromeSpanEvent `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
}

// WriteChromeSpans exports a merged span stream in Chrome trace_event
// format. machines fixes the pid assignment exactly as in
// WriteChromeMerged, so a span timeline and an event timeline of the
// same fleet line up track for track. Deterministic: the same stream
// always serializes to the same bytes.
func WriteChromeSpans(w io.Writer, spans []SourcedSpan, machines []string, mhz float64) error {
	if mhz <= 0 {
		mhz = 1
	}
	us := func(cycle uint64) float64 { return float64(cycle) / mhz }
	pids := make(map[string]uint32, len(machines))
	for i, name := range machines {
		pids[name] = uint32(i + 1)
	}

	out := make([]chromeSpanEvent, 0, 3*len(spans)+len(machines))
	for i, name := range machines {
		out = append(out, chromeSpanEvent{
			Name: "process_name", Ph: "M", Pid: uint32(i + 1),
			Args: map[string]any{"name": "machine " + name},
		})
	}

	// Slice per span; open spans (End == 0) degrade to instants.
	byID := make(map[SpanID]SourcedSpan, len(spans))
	for _, s := range spans {
		byID[s.ID] = s
	}
	for _, s := range spans {
		pid, ok := pids[s.Machine]
		if !ok {
			continue
		}
		args := map[string]any{
			"trace": uint64(s.Trace), "span": uint64(s.ID),
			"parent": uint64(s.Parent), "arg": s.Arg,
		}
		if s.End != 0 {
			dur := us(s.End) - us(s.Start)
			out = append(out, chromeSpanEvent{
				Name: s.Kind.String(), Cat: "span", Ph: "X",
				Ts: us(s.Start), Dur: &dur, Pid: pid, Tid: s.Env, Args: args,
			})
		} else {
			out = append(out, chromeSpanEvent{
				Name: s.Kind.String(), Cat: "span", Ph: "i",
				Ts: us(s.Start), Pid: pid, Tid: s.Env, Scope: "t", Args: args,
			})
		}
	}
	// Flow arrows along every parent→child edge present in the stream.
	// The flow id is the child's span ID (one parent per child, so edges
	// are unique), and the start rides the parent slice at the child's
	// launch time.
	for _, s := range spans {
		if s.Parent == 0 {
			continue
		}
		p, ok := byID[s.Parent]
		if !ok {
			continue
		}
		ppid, okP := pids[p.Machine]
		cpid, okC := pids[s.Machine]
		if !okP || !okC {
			continue
		}
		startTs := s.Start
		if p.End != 0 && p.End < startTs {
			startTs = p.End
		}
		if startTs < p.Start {
			startTs = p.Start
		}
		out = append(out, chromeSpanEvent{
			Name: "causal", Cat: "span-flow", Ph: "s", ID: uint64(s.ID),
			Ts: us(startTs), Pid: ppid, Tid: p.Env,
		})
		out = append(out, chromeSpanEvent{
			Name: "causal", Cat: "span-flow", Ph: "f", BP: "e", ID: uint64(s.ID),
			Ts: us(s.Start), Pid: cpid, Tid: s.Env,
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeSpanTrace{TraceEvents: out, DisplayTimeUnit: "ms"})
}
