package metrics

import (
	"math"
	"testing"
)

func TestEmptyHist(t *testing.T) {
	var h Hist
	s := h.Snapshot()
	if s != (Snapshot{}) {
		t.Errorf("empty histogram snapshot = %+v, want zero", s)
	}
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Error("empty histogram reports nonzero statistics")
	}
}

func TestNilHistIsSafe(t *testing.T) {
	var h *Hist
	h.Record(42) // must not panic
	if h.Count() != 0 || h.Snapshot() != (Snapshot{}) {
		t.Error("nil histogram is not a silent sink")
	}
}

func TestBucketBounds(t *testing.T) {
	cases := []struct {
		i      int
		lo, hi uint64
	}{
		{0, 0, 0},
		{1, 1, 1},
		{2, 2, 3},
		{3, 4, 7},
		{10, 512, 1023},
		{64, 1 << 63, math.MaxUint64},
	}
	for _, c := range cases {
		lo, hi := BucketBounds(c.i)
		if lo != c.lo || hi != c.hi {
			t.Errorf("BucketBounds(%d) = [%d, %d], want [%d, %d]", c.i, lo, hi, c.lo, c.hi)
		}
	}
}

func TestRecordBasicStats(t *testing.T) {
	var h Hist
	for _, v := range []uint64{10, 20, 30, 40, 1000} {
		h.Record(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if h.Min() != 10 || h.Max() != 1000 {
		t.Errorf("min/max = %d/%d, want 10/1000", h.Min(), h.Max())
	}
	if got, want := h.Mean(), 220.0; got != want {
		t.Errorf("mean = %g, want %g", got, want)
	}
	if h.Sum() != 1100 {
		t.Errorf("sum = %d, want 1100", h.Sum())
	}
}

func TestQuantilesClampedAndOrdered(t *testing.T) {
	var h Hist
	// Heavy head at ~16 cycles, one tail outlier.
	for i := 0; i < 99; i++ {
		h.Record(16)
	}
	h.Record(100000)
	s := h.Snapshot()
	if s.P50 < h.Min() || s.Max < s.P99 || s.P99 < s.P90 || s.P90 < s.P50 {
		t.Errorf("quantiles out of order: %+v", s)
	}
	// p50 must land in the head bucket [16, 31], nowhere near the outlier.
	if s.P50 < 16 || s.P50 > 31 {
		t.Errorf("p50 = %d, want within the head bucket [16, 31]", s.P50)
	}
	// p99 ranks onto the 99th of 100 samples, still head.
	if s.P99 > 31 {
		t.Errorf("p99 = %d, want head bucket", s.P99)
	}
	// max sees the outlier exactly.
	if s.Max != 100000 {
		t.Errorf("max = %d, want 100000", s.Max)
	}
	if h.Quantile(0) != h.Min() || h.Quantile(1) != h.Max() {
		t.Error("quantile extremes do not clamp to min/max")
	}
}

func TestSingleSampleQuantiles(t *testing.T) {
	var h Hist
	h.Record(77)
	s := h.Snapshot()
	if s.Min != 77 || s.P50 != 77 || s.P90 != 77 || s.P99 != 77 || s.Max != 77 {
		t.Errorf("single-sample snapshot not degenerate at 77: %+v", s)
	}
}

func TestZeroSampleGoesToBucketZero(t *testing.T) {
	var h Hist
	h.Record(0)
	h.Record(0)
	s := h.Snapshot()
	if s.Count != 2 || s.Min != 0 || s.Max != 0 || s.P99 != 0 {
		t.Errorf("zero samples mishandled: %+v", s)
	}
}

func TestReset(t *testing.T) {
	var h Hist
	h.Record(5)
	h.Reset()
	if h.Count() != 0 || h.Snapshot() != (Snapshot{}) {
		t.Error("Reset did not empty the histogram")
	}
}

// TestRecordNeverAllocates pins the hot-path contract: hanging histograms
// off every kernel operation must not create garbage-collector work.
func TestRecordNeverAllocates(t *testing.T) {
	var h Hist
	v := uint64(17)
	allocs := testing.AllocsPerRun(1000, func() {
		h.Record(v)
		v = v*7 + 3
	})
	if allocs != 0 {
		t.Errorf("Record allocates %.1f objects per call, want 0", allocs)
	}
}

// TestSnapshotNeverAllocates keeps observation cheap too.
func TestSnapshotNeverAllocates(t *testing.T) {
	var h Hist
	for i := uint64(1); i < 1000; i += 7 {
		h.Record(i)
	}
	allocs := testing.AllocsPerRun(100, func() { _ = h.Snapshot() })
	if allocs != 0 {
		t.Errorf("Snapshot allocates %.1f objects per call, want 0", allocs)
	}
}

func TestMergePoolsBuckets(t *testing.T) {
	var a, b, all Hist
	for _, v := range []uint64{3, 100, 7000} {
		a.Record(v)
		all.Record(v)
	}
	for _, v := range []uint64{1, 50, 1 << 20} {
		b.Record(v)
		all.Record(v)
	}
	a.Merge(&b)
	if got, want := a.Snapshot(), all.Snapshot(); got != want {
		t.Errorf("merged snapshot %+v != recording everything into one histogram %+v", got, want)
	}

	// Merging an empty (or nil) histogram is a no-op; merging into nil is safe.
	before := a.Snapshot()
	var empty Hist
	a.Merge(&empty)
	a.Merge(nil)
	if a.Snapshot() != before {
		t.Error("merging empty/nil changed the histogram")
	}
	var nilH *Hist
	nilH.Merge(&a) // must not panic

	// Merge into an empty histogram copies the source.
	var dst Hist
	dst.Merge(&a)
	if dst.Snapshot() != a.Snapshot() {
		t.Error("merge into empty did not copy the source")
	}
}
