// Package metrics provides allocation-free cycle-latency histograms for
// the simulated kernel. The paper's evaluation reports minima and means
// (Tables 2-9) because on real MIPS hardware the distributions were
// boring; our software-simulated kernel has real tails — STLB eviction,
// ASH compilation, revocation storms — that single numbers hide. A Hist
// records every sample into fixed log₂ buckets so the whole distribution
// is visible: count, min, mean, p50, p90, p99, max.
//
// The design contract mirrors ktrace: recording is observation, never
// participation. Record touches only plain counters — it cannot advance
// the simulated clock (this package does not even import internal/hw),
// never allocates, and never locks (the simulation is single-threaded by
// construction). Enabling histograms cannot change a measured cycle
// count; internal/aegis pins that invariant with a test.
package metrics

import (
	"math"
	"math/bits"
)

// NumBuckets is the number of log₂ buckets. Bucket 0 holds the value 0;
// bucket i (1 ≤ i ≤ 64) holds values v with bit length i, i.e. the range
// [2^(i-1), 2^i - 1]. Every uint64 lands in exactly one bucket.
const NumBuckets = 65

// Hist is a fixed-size log₂-bucketed histogram of uint64 samples
// (cycles, in kernel use). The zero value is an empty, ready histogram;
// Record never allocates, so a Hist can sit in hot kernel structs and in
// per-environment arrays without touching the garbage collector.
type Hist struct {
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
	buckets [NumBuckets]uint64
}

// Record adds one sample. Nil-safe (a nil *Hist swallows the sample), so
// callers can keep a single pointer check as their only fast-path cost.
func (h *Hist) Record(v uint64) {
	if h == nil {
		return
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bits.Len64(v)]++
}

// Count reports how many samples were recorded.
func (h *Hist) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum reports the total of all recorded samples.
func (h *Hist) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Min reports the smallest recorded sample (0 when empty).
func (h *Hist) Min() uint64 {
	if h == nil {
		return 0
	}
	return h.min
}

// Max reports the largest recorded sample (0 when empty).
func (h *Hist) Max() uint64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Mean reports the arithmetic mean of recorded samples (0 when empty).
func (h *Hist) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// BucketBounds returns the inclusive value range [lo, hi] of bucket i.
func BucketBounds(i int) (lo, hi uint64) {
	if i <= 0 {
		return 0, 0
	}
	lo = uint64(1) << (i - 1)
	hi = lo<<1 - 1 // wraps to MaxUint64 for i == 64, which is correct
	return lo, hi
}

// Quantile returns the q-quantile (0 < q < 1) by nearest rank, linearly
// interpolated within the log₂ bucket that holds the rank and clamped to
// the observed [min, max]. Exact at the extremes; within one bucket
// width (a factor of two) elsewhere — plenty for latency tails.
func (h *Hist) Quantile(q float64) uint64 {
	if h == nil || h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		if cum+n >= target {
			lo, hi := BucketBounds(i)
			frac := float64(target-cum) / float64(n)
			v := uint64(float64(lo) + frac*float64(hi-lo))
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
		cum += n
	}
	return h.max
}

// Merge folds another histogram into this one, bucket by bucket — the
// aggregation primitive for fleet and soak views, where per-round or
// per-machine distributions pool into one trend. Quantiles of the merged
// histogram are exact to the same bucket resolution as its inputs.
func (h *Hist) Merge(o *Hist) {
	if h == nil || o == nil || o.count == 0 {
		return
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
}

// Reset empties the histogram in place (no allocation).
func (h *Hist) Reset() {
	if h != nil {
		*h = Hist{}
	}
}

// Snapshot is an immutable summary of a histogram, the unit /proc reads
// and the bench pipeline serialize. All cycle fields are in the sample's
// unit (simulated cycles for kernel histograms).
type Snapshot struct {
	Count uint64  `json:"count"`
	Min   uint64  `json:"min"`
	Mean  float64 `json:"mean"`
	P50   uint64  `json:"p50"`
	P90   uint64  `json:"p90"`
	P99   uint64  `json:"p99"`
	Max   uint64  `json:"max"`
}

// Snapshot summarizes the histogram. Cheap enough to call on every
// /proc read; the zero Snapshot means "no samples".
func (h *Hist) Snapshot() Snapshot {
	if h == nil || h.count == 0 {
		return Snapshot{}
	}
	return Snapshot{
		Count: h.count,
		Min:   h.min,
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		Max:   h.max,
	}
}
