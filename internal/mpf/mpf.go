// Package mpf is the interpreted packet-filter baseline for Table 7,
// modelled on MPF [56] (itself descended from the CSPF/BPF stack-machine
// tradition [37]): filters are bytecode programs run by a generic
// interpreter. Every packet pays opcode dispatch, operand decoding, and a
// per-filter loop — precisely the costs DPF's dynamic code generation
// removes. The engine is a faithful *cost structure* baseline, not a port
// of the Mach sources.
package mpf

import (
	"encoding/binary"
	"fmt"

	"exokernel/internal/dpf"
	"exokernel/internal/pkt"
)

// OpCode is one stack-machine operation.
type OpCode byte

// Bytecodes. The accumulator machine: LD* loads a packet field, MASK ands
// the accumulator, RETNE rejects unless the accumulator equals the
// operand, ACCEPT accepts.
const (
	LDB    OpCode = iota // acc = p[k]
	LDH                  // acc = be16(p[k:])
	LDW                  // acc = be32(p[k:])
	MASK                 // acc &= k
	RETNE                // if acc != k → reject
	ACCEPT               // accept
)

// Instr is one bytecode instruction.
type Instr struct {
	Op OpCode
	K  uint32
}

// Program is one filter.
type Program []Instr

// CyclesPerOp is the simulated cost of one interpreted bytecode: fetch,
// dispatch through the switch, operand decode, bounds checks. Interpreters
// of this era cost ~8-10 machine instructions per bytecode.
const CyclesPerOp = 9

// Engine holds installed programs, evaluated in order per packet.
type Engine struct {
	progs []Program
}

// NewEngine creates an empty engine.
func NewEngine() *Engine { return &Engine{} }

// Count reports the number of installed filters.
func (e *Engine) Count() int { return len(e.progs) }

// Insert installs a filter program.
func (e *Engine) Insert(p Program) (dpf.FilterID, error) {
	if len(p) == 0 {
		return dpf.None, fmt.Errorf("mpf: empty program")
	}
	e.progs = append(e.progs, p)
	return dpf.FilterID(len(e.progs) - 1), nil
}

// Classify interprets each program against the frame until one accepts.
// It returns the accepting filter, simulated cycles, and success.
func (e *Engine) Classify(p []byte) (dpf.FilterID, uint64, bool) {
	var ops uint64
	for i, prog := range e.progs {
		acc := uint32(0)
		rejected := false
	run:
		for _, in := range prog {
			ops++
			switch in.Op {
			case LDB:
				if int(in.K) >= len(p) {
					rejected = true
					break run
				}
				acc = uint32(p[in.K])
			case LDH:
				if int(in.K)+2 > len(p) {
					rejected = true
					break run
				}
				acc = uint32(binary.BigEndian.Uint16(p[in.K:]))
			case LDW:
				if int(in.K)+4 > len(p) {
					rejected = true
					break run
				}
				acc = binary.BigEndian.Uint32(p[in.K:])
			case MASK:
				acc &= in.K
			case RETNE:
				if acc != in.K {
					rejected = true
					break run
				}
			case ACCEPT:
				return dpf.FilterID(i), ops * CyclesPerOp, true
			}
		}
		_ = rejected
	}
	return dpf.None, ops * CyclesPerOp, false
}

// Compile lowers a DPF declarative filter to bytecode, so the Table 7
// benchmark can install the *same* filters in both engines.
func Compile(f dpf.Filter) Program {
	var prog Program
	for _, a := range f {
		switch a.Size {
		case 1:
			prog = append(prog, Instr{LDB, uint32(a.Off)})
		case 2:
			prog = append(prog, Instr{LDH, uint32(a.Off)})
		default:
			prog = append(prog, Instr{LDW, uint32(a.Off)})
		}
		if a.Mask != 0 {
			prog = append(prog, Instr{MASK, a.Mask})
		}
		prog = append(prog, Instr{RETNE, a.Val})
	}
	return append(prog, Instr{Op: ACCEPT})
}

// FlowProgram builds the bytecode for a flow, mirroring dpf.FlowFilter.
func FlowProgram(f pkt.Flow) Program { return Compile(dpf.FlowFilter(f)) }
