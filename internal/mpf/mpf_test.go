package mpf

import (
	"testing"

	"exokernel/internal/dpf"
	"exokernel/internal/pkt"
)

func flowN(i int) pkt.Flow {
	return pkt.Flow{
		Proto: pkt.ProtoTCP,
		SrcIP: pkt.IP(10, 0, 0, byte(i+1)), DstIP: pkt.IP(10, 0, 0, 200),
		SrcPort: uint16(1000 + i), DstPort: uint16(2000 + i),
	}
}

func TestClassifyMatchesDPF(t *testing.T) {
	me := NewEngine()
	de := dpf.NewEngine()
	for i := 0; i < 10; i++ {
		if _, err := me.Insert(FlowProgram(flowN(i))); err != nil {
			t.Fatal(err)
		}
		if _, err := de.Insert(dpf.FlowFilter(flowN(i))); err != nil {
			t.Fatal(err)
		}
	}
	if me.Count() != 10 {
		t.Fatalf("Count = %d", me.Count())
	}
	for i := 0; i < 10; i++ {
		frame := pkt.Build(pkt.Addr{}, pkt.Addr{}, flowN(i), []byte("y"))
		mid, mc, mok := me.Classify(frame)
		did, _, dok := de.Classify(frame)
		if !mok || !dok || mid != did {
			t.Errorf("flow %d: mpf=%d(%v) dpf=%d(%v)", i, mid, mok, did, dok)
		}
		if mc == 0 {
			t.Error("mpf reported zero cycles")
		}
	}
}

func TestLinearCostGrowth(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 10; i++ {
		if _, err := e.Insert(FlowProgram(flowN(i))); err != nil {
			t.Fatal(err)
		}
	}
	first := pkt.Build(pkt.Addr{}, pkt.Addr{}, flowN(0), nil)
	last := pkt.Build(pkt.Addr{}, pkt.Addr{}, flowN(9), nil)
	_, cFirst, _ := e.Classify(first)
	_, cLast, _ := e.Classify(last)
	if cLast <= cFirst*5 {
		t.Errorf("per-filter interpretation should make the last filter ~10x the first: first=%d last=%d", cFirst, cLast)
	}
}

func TestNoMatchAndBounds(t *testing.T) {
	e := NewEngine()
	if _, err := e.Insert(FlowProgram(flowN(0))); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := e.Classify([]byte{1, 2}); ok {
		t.Error("truncated frame matched")
	}
	other := pkt.Build(pkt.Addr{}, pkt.Addr{}, flowN(3), nil)
	if _, _, ok := e.Classify(other); ok {
		t.Error("wrong flow matched")
	}
	if _, err := e.Insert(nil); err == nil {
		t.Error("empty program accepted")
	}
}

func TestCompileMask(t *testing.T) {
	e := NewEngine()
	prog := Compile(dpf.Filter{{Off: 0, Size: 1, Mask: 0xF0, Val: 0x40}})
	id, err := e.Insert(prog)
	if err != nil {
		t.Fatal(err)
	}
	if got, _, ok := e.Classify([]byte{0x45}); !ok || got != id {
		t.Error("masked bytecode match failed")
	}
	if _, _, ok := e.Classify([]byte{0x55}); ok {
		t.Error("masked bytecode matched wrong value")
	}
}
