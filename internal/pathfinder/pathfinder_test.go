package pathfinder

import (
	"testing"

	"exokernel/internal/dpf"
	"exokernel/internal/pkt"
)

func flowN(i int) pkt.Flow {
	return pkt.Flow{
		Proto: pkt.ProtoTCP,
		SrcIP: pkt.IP(10, 0, 0, byte(i+1)), DstIP: pkt.IP(10, 0, 0, 200),
		SrcPort: uint16(1000 + i), DstPort: uint16(2000 + i),
	}
}

func TestClassifyMatchesDPF(t *testing.T) {
	pe := NewEngine()
	de := dpf.NewEngine()
	for i := 0; i < 10; i++ {
		if _, err := pe.Insert(FlowPattern(flowN(i))); err != nil {
			t.Fatal(err)
		}
		if _, err := de.Insert(dpf.FlowFilter(flowN(i))); err != nil {
			t.Fatal(err)
		}
	}
	if pe.Count() != 10 {
		t.Fatalf("Count = %d", pe.Count())
	}
	for i := 0; i < 10; i++ {
		frame := pkt.Build(pkt.Addr{}, pkt.Addr{}, flowN(i), []byte("z"))
		pid, pc, pok := pe.Classify(frame)
		did, _, dok := de.Classify(frame)
		if !pok || !dok || pid != did {
			t.Errorf("flow %d: pathfinder=%d(%v) dpf=%d(%v)", i, pid, pok, did, dok)
		}
		if pc == 0 {
			t.Error("pathfinder reported zero cycles")
		}
	}
}

func TestMergedCostSublinear(t *testing.T) {
	pe := NewEngine()
	for i := 0; i < 10; i++ {
		if _, err := pe.Insert(FlowPattern(flowN(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Merged cells: a match should evaluate ~6 cells, not 60.
	frame := pkt.Build(pkt.Addr{}, pkt.Addr{}, flowN(9), nil)
	_, cycles, ok := pe.Classify(frame)
	if !ok {
		t.Fatal("classify failed")
	}
	if cells := cycles / CyclesPerCell; cells > 12 {
		t.Errorf("merged walk evaluated %d cells, want ~6", cells)
	}
}

func TestBacktrackingAcrossPatterns(t *testing.T) {
	pe := NewEngine()
	fine, err := pe.Insert(dpf.FlowFilter(flowN(0)))
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := pe.Insert(dpf.PortFilter(pkt.ProtoTCP, uint16(2000)))
	if err != nil {
		t.Fatal(err)
	}
	full := pkt.Build(pkt.Addr{}, pkt.Addr{}, flowN(0), nil)
	if id, _, _ := pe.Classify(full); id != fine {
		t.Errorf("specific flow = %d, want %d", id, fine)
	}
	other := flowN(0)
	other.SrcPort = 7777
	frame := pkt.Build(pkt.Addr{}, pkt.Addr{}, other, nil)
	if id, _, _ := pe.Classify(frame); id != coarse {
		t.Errorf("fallback flow = %d, want %d", id, coarse)
	}
}

func TestNoMatch(t *testing.T) {
	pe := NewEngine()
	if _, _, ok := pe.Classify([]byte{1}); ok {
		t.Error("empty engine matched")
	}
	if _, err := pe.Insert(FlowPattern(flowN(0))); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := pe.Classify([]byte{1, 2, 3}); ok {
		t.Error("garbage matched")
	}
	if _, err := pe.Insert(nil); err == nil {
		t.Error("empty pattern accepted")
	}
	if _, err := pe.Insert(FlowPattern(flowN(0))); err == nil {
		t.Error("duplicate pattern accepted")
	}
}
