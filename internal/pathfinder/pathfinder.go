// Package pathfinder is the second Table 7 baseline, modelled on
// PATHFINDER [6]: a pattern-based classifier whose patterns are sequences
// of *cells* (offset, length, mask, value) merged into a shared structure,
// so common protocol prefixes are tested once per packet. PATHFINDER's
// structural insight (merging) is present; what it lacks relative to DPF
// is dynamic code generation — each cell still pays interpretive overhead
// to decode its own description. That makes it faster than MPF's
// per-filter loop and slower than DPF's compiled classifier, the ordering
// Table 7 reports.
package pathfinder

import (
	"encoding/binary"
	"fmt"

	"exokernel/internal/dpf"
	"exokernel/internal/pkt"
)

// Cell is one pattern element: compare load(Off, Size) & Mask to a value
// chosen by the transition table.
type Cell struct {
	Off  int
	Size int
	Mask uint32
}

// node is a cell plus its transitions.
type node struct {
	cell   Cell
	next   map[uint32]*node
	alt    *node
	accept dpf.FilterID
}

func newNode(c Cell) *node {
	return &node{cell: c, next: map[uint32]*node{}, accept: dpf.None}
}

// CyclesPerCell is the simulated cost of evaluating one cell: decode the
// cell descriptor (offset, width, mask), load, compare, manage the
// backtracking/line state, follow the transition. PATHFINDER's published
// number for the ten-TCP/IP-filter workload — 19 us on a 25 MHz-class
// DECstation [6], a walk of roughly six to eight merged cells — implies
// ~60-80 cycles of interpretation per cell; 60 is used here. (The
// interpreter also handled fragmentation and out-of-order arrivals, which
// this model does not charge for.)
const CyclesPerCell = 60

// Engine is the pattern matcher.
type Engine struct {
	root  *node
	count int
}

// NewEngine creates an empty engine.
func NewEngine() *Engine { return &Engine{} }

// Count reports the number of installed patterns.
func (e *Engine) Count() int { return e.count }

// Insert installs a pattern expressed as a DPF filter (cells and atoms are
// the same shape, which lets Table 7 install identical workloads).
func (e *Engine) Insert(f dpf.Filter) (dpf.FilterID, error) {
	if len(f) == 0 {
		return dpf.None, fmt.Errorf("pathfinder: empty pattern")
	}
	id := dpf.FilterID(e.count)
	var n *node
	for i, a := range f {
		mask := a.Mask
		if mask == 0 {
			mask = widthMask(a.Size)
		}
		c := Cell{Off: a.Off, Size: a.Size, Mask: mask}
		if i == 0 {
			if e.root == nil {
				e.root = newNode(c)
			}
			n = findCell(e.root, c)
		} else {
			n = findCell(childAnchor(n, c), c)
		}
		child, ok := n.next[a.Val&mask]
		if !ok {
			child = &node{next: map[uint32]*node{}, accept: dpf.None}
			n.next[a.Val&mask] = child
		}
		if i == len(f)-1 {
			if child.accept != dpf.None {
				return dpf.None, fmt.Errorf("pathfinder: duplicate pattern")
			}
			child.accept = id
		}
		n = child
	}
	e.count++
	return id, nil
}

// childAnchor prepares a child position to host a cell chain.
func childAnchor(n *node, c Cell) *node {
	if n.cell.Size == 0 {
		n.cell = c
	}
	return n
}

// findCell walks the alt chain for a node with this cell, appending one if
// missing.
func findCell(n *node, c Cell) *node {
	for cur := n; ; cur = cur.alt {
		if cur.cell == c {
			return cur
		}
		if cur.alt == nil {
			cur.alt = newNode(c)
			return cur.alt
		}
	}
}

// Classify walks the merged pattern DAG with backtracking (PATHFINDER's
// cells backtrack to alternative lines when a partial match dies), so
// overlapping patterns resolve to the most specific match.
func (e *Engine) Classify(p []byte) (dpf.FilterID, uint64, bool) {
	if e.root == nil {
		return dpf.None, 0, false
	}
	var cells uint64
	id := walk(e.root, p, &cells)
	return id, cells * CyclesPerCell, id != dpf.None
}

func walk(n *node, p []byte, cells *uint64) dpf.FilterID {
	for cur := n; cur != nil; cur = cur.alt {
		if cur.cell.Size == 0 {
			continue
		}
		*cells++
		v, ok := loadField(p, cur.cell)
		if !ok {
			continue
		}
		child, hit := cur.next[v]
		if !hit {
			continue
		}
		if child.cell.Size != 0 || len(child.next) > 0 {
			if id := walk(child, p, cells); id != dpf.None {
				return id
			}
		}
		if child.accept != dpf.None {
			return child.accept
		}
	}
	return dpf.None
}

func loadField(p []byte, c Cell) (uint32, bool) {
	switch c.Size {
	case 1:
		if c.Off >= len(p) {
			return 0, false
		}
		return uint32(p[c.Off]) & c.Mask, true
	case 2:
		if c.Off+2 > len(p) {
			return 0, false
		}
		return uint32(binary.BigEndian.Uint16(p[c.Off:])) & c.Mask, true
	default:
		if c.Off+4 > len(p) {
			return 0, false
		}
		return binary.BigEndian.Uint32(p[c.Off:]) & c.Mask, true
	}
}

func widthMask(size int) uint32 {
	switch size {
	case 1:
		return 0xFF
	case 2:
		return 0xFFFF
	default:
		return 0xFFFFFFFF
	}
}

// FlowPattern mirrors dpf.FlowFilter for identical Table 7 workloads.
func FlowPattern(f pkt.Flow) dpf.Filter { return dpf.FlowFilter(f) }
