package hw

import (
	"encoding/binary"
	"fmt"
)

// PhysMem is the machine's physical memory: a flat array of pages plus a
// free-frame list. The exokernel exposes *physical* page numbers to library
// operating systems ("expose names", §2.3 of the paper); nothing in here
// knows about ownership — secure bindings live in the kernel.
type PhysMem struct {
	clock    *Clock
	data     []byte
	npages   int
	free     []uint32 // free frame numbers, LIFO
	missRate int
	lcg      uint32 // deterministic pseudo-random state for the miss model
}

// NewPhysMem creates physical memory with npages frames.
func NewPhysMem(clock *Clock, npages, missRate int) *PhysMem {
	m := &PhysMem{
		clock:    clock,
		data:     make([]byte, npages*PageSize),
		npages:   npages,
		missRate: missRate,
		lcg:      0x2545F491,
	}
	m.free = make([]uint32, 0, npages)
	for i := npages - 1; i >= 0; i-- {
		m.free = append(m.free, uint32(i))
	}
	return m
}

// Reset returns physical memory to its power-on state in place: every
// frame zeroed and free, the miss-model PRNG reseeded. In place so that
// a reboot-heavy soak run does not churn the host allocator with whole
// machine images (32 MB per DEC5000).
func (m *PhysMem) Reset() {
	clear(m.data)
	m.free = m.free[:0]
	for i := m.npages - 1; i >= 0; i-- {
		m.free = append(m.free, uint32(i))
	}
	m.lcg = 0x2545F491
}

// NumPages reports the number of physical frames.
func (m *PhysMem) NumPages() int { return m.npages }

// FreeFrames reports how many frames are unallocated.
func (m *PhysMem) FreeFrames() int { return len(m.free) }

// AllocFrame removes a frame from the free list and returns its number.
func (m *PhysMem) AllocFrame() (uint32, bool) {
	if len(m.free) == 0 {
		return 0, false
	}
	f := m.free[len(m.free)-1]
	m.free = m.free[:len(m.free)-1]
	return f, true
}

// AllocFrameAt removes a specific frame from the free list; it fails if the
// frame is already allocated. This implements "expose allocation": a library
// OS may request specific physical pages (e.g. for cache coloring [29]).
func (m *PhysMem) AllocFrameAt(frame uint32) bool {
	for i, f := range m.free {
		if f == frame {
			m.free[i] = m.free[len(m.free)-1]
			m.free = m.free[:len(m.free)-1]
			return true
		}
	}
	return false
}

// FreeFrame returns a frame to the free list and zeroes it.
func (m *PhysMem) FreeFrame(frame uint32) error {
	if int(frame) >= m.npages {
		return fmt.Errorf("hw: free of invalid frame %d", frame)
	}
	base := int(frame) * PageSize
	clear(m.data[base : base+PageSize])
	m.free = append(m.free, frame)
	return nil
}

// chargeRef charges the cost of one cached data reference, applying the
// pseudo-random cache-miss model.
func (m *PhysMem) chargeRef() {
	m.clock.Tick(CostMemWord)
	if m.missRate > 0 {
		m.lcg = m.lcg*1664525 + 1013904223
		if int(m.lcg%uint32(m.missRate)) == 0 {
			m.clock.Tick(CostCacheMiss)
		}
	}
}

// ReadWord reads a 32-bit word at physical address pa (must be in range).
func (m *PhysMem) ReadWord(pa uint32) uint32 {
	m.chargeRef()
	return binary.LittleEndian.Uint32(m.data[pa:])
}

// WriteWord writes a 32-bit word at physical address pa.
func (m *PhysMem) WriteWord(pa uint32, v uint32) {
	m.chargeRef()
	binary.LittleEndian.PutUint32(m.data[pa:], v)
}

// ReadByte reads one byte at physical address pa.
func (m *PhysMem) LoadByte(pa uint32) byte {
	m.chargeRef()
	return m.data[pa]
}

// WriteByte writes one byte at physical address pa.
func (m *PhysMem) StoreByte(pa uint32, v byte) {
	m.chargeRef()
	m.data[pa] = v
}

// ReadHalf reads a 16-bit halfword at physical address pa.
func (m *PhysMem) ReadHalf(pa uint32) uint16 {
	m.chargeRef()
	return binary.LittleEndian.Uint16(m.data[pa:])
}

// WriteHalf writes a 16-bit halfword at physical address pa.
func (m *PhysMem) WriteHalf(pa uint32, v uint16) {
	m.chargeRef()
	binary.LittleEndian.PutUint16(m.data[pa:], v)
}

// ReadWordUncached reads a word with uncached (physical-path) cost. The
// Aegis exception path uses physical addresses to avoid nested TLB faults.
func (m *PhysMem) ReadWordUncached(pa uint32) uint32 {
	m.clock.Tick(CostUncached)
	return binary.LittleEndian.Uint32(m.data[pa:])
}

// WriteWordUncached writes a word with uncached cost.
func (m *PhysMem) WriteWordUncached(pa uint32, v uint32) {
	m.clock.Tick(CostUncached)
	binary.LittleEndian.PutUint32(m.data[pa:], v)
}

// CopyIn copies host bytes into physical memory, charging per word. Used by
// device DMA and kernel copy paths; the charge makes copy costs visible in
// measurements (copies are "the bane of fast networking systems").
func (m *PhysMem) CopyIn(pa uint32, src []byte) {
	words := (len(src) + WordSize - 1) / WordSize
	for i := 0; i < words; i++ {
		m.chargeRef()
	}
	copy(m.data[pa:], src)
}

// CopyOut copies physical memory into a host buffer, charging per word.
func (m *PhysMem) CopyOut(dst []byte, pa uint32) {
	words := (len(dst) + WordSize - 1) / WordSize
	for i := 0; i < words; i++ {
		m.chargeRef()
	}
	copy(dst, m.data[pa:int(pa)+len(dst)])
}

// Page returns the raw byte slice of a physical frame. It charges nothing:
// callers are device models or test assertions, which account (or need not
// account) for costs themselves.
func (m *PhysMem) Page(frame uint32) []byte {
	base := int(frame) * PageSize
	return m.data[base : base+PageSize]
}
