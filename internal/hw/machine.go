package hw

// TrapHandler is implemented by a kernel (Aegis, or the monolithic
// baseline). The machine calls it whenever an exception or interrupt is
// raised; the CPU's Cause/EPC/BadVAddr registers describe the event.
type TrapHandler interface {
	HandleTrap(m *Machine)
}

// Machine is one simulated computer: CPU, clock, physical memory, hardware
// TLB, and devices. A kernel installs itself as the trap handler; library
// operating systems and applications only ever touch the machine through
// the kernel's exported interface.
type Machine struct {
	Config Config
	Clock  *Clock
	Phys   *PhysMem
	TLB    *TLB
	CPU    CPU
	Timer  *Timer
	NIC    *NIC
	FB     *FrameBuffer
	Disk   *Disk

	handler TrapHandler
}

// NewMachine builds a machine from a configuration.
func NewMachine(cfg Config) *Machine {
	clock := &Clock{}
	m := &Machine{
		Config: cfg,
		Clock:  clock,
		Phys:   NewPhysMem(clock, cfg.MemPages, cfg.MissRate),
		TLB:    NewTLB(clock, cfg.TLBSize),
	}
	m.Timer = NewTimer(m)
	m.NIC = NewNIC(m)
	m.FB = NewFrameBuffer(64)
	m.Disk = NewDisk(clock, cfg.DiskBlocks)
	m.CPU.Mode = ModeKernel
	m.CPU.IntrOn = true
	return m
}

// SetTrapHandler installs the kernel.
func (m *Machine) SetTrapHandler(h TrapHandler) { m.handler = h }

// Micros converts cycles elapsed on this machine's clock to microseconds.
func (m *Machine) Micros(cycles uint64) float64 { return m.Config.Micros(cycles) }

// RaiseException records an exception in the CPU report registers, charges
// the hardware exception-entry cost, switches to kernel mode, and invokes
// the kernel. The kernel decides where execution continues by rewriting the
// CPU state before returning.
func (m *Machine) RaiseException(cause Exc, epc, badva uint32) {
	m.Clock.Tick(CostExcEntry)
	m.CPU.Cause = cause
	m.CPU.EPC = epc
	m.CPU.BadVAddr = badva
	m.CPU.Mode = ModeKernel
	if m.handler != nil {
		m.handler.HandleTrap(m)
	}
}

// PollInterrupts raises a pending interrupt if any line is asserted and
// interrupts are enabled. The VM calls this between instructions; native
// (Go-modelled) code paths call it at their loop boundaries.
func (m *Machine) PollInterrupts() {
	if !m.CPU.IntrOn || m.CPU.Pending == 0 {
		return
	}
	m.RaiseException(ExcInterrupt, m.CPU.PC, 0)
}

// Translate performs the MMU fast path for a data reference: virtual page
// lookup in the hardware TLB under the current ASID. On a hit it returns
// the physical address; on a miss or permission failure it returns the
// exception the hardware would raise. Alignment is the caller's problem
// (the VM checks it per access width).
func (m *Machine) Translate(va uint32, write bool) (uint32, Exc) {
	vpn := va >> PageShift
	e, ok := m.TLB.Lookup(vpn, m.CPU.ASID)
	if !ok {
		if write {
			return 0, ExcTLBMissS
		}
		return 0, ExcTLBMissL
	}
	if e.Perms&PermKernel != 0 && m.CPU.Mode != ModeKernel {
		if write {
			return 0, ExcTLBMissS
		}
		return 0, ExcTLBMissL
	}
	if write && e.Perms&PermWrite == 0 {
		return 0, ExcTLBMod
	}
	return e.PFN<<PageShift | va&(PageSize-1), Exc(ExcNone)
}
