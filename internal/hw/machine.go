package hw

import "os"

// TrapHandler is implemented by a kernel (Aegis, or the monolithic
// baseline). The machine calls it whenever an exception or interrupt is
// raised; the CPU's Cause/EPC/BadVAddr registers describe the event.
type TrapHandler interface {
	HandleTrap(m *Machine)
}

// microTLB is a last-translation cache in front of the hardware TLB: a
// pure memo of TLB.Lookup results under a TLB epoch. It keeps the two
// most recent translations, MRU first — one entry thrashes on the
// commonest hot loop of all, alternating loads from two arrays on
// different pages (matmul's A and B). Permission checks are NOT
// memoized — Translate re-runs them on every reference against the
// cached entry, so a mode switch needs no explicit invalidation; a TLB
// mutation invalidates via the epoch, and an ASID change simply misses
// the tag. Host-side state only: it never charges cycles and holds
// nothing the TLB does not.
type microTLB struct {
	way [2]microWay
}

// microWay is one cached translation with its validity tag.
type microWay struct {
	valid bool
	asid  uint8
	vpn   uint32
	epoch uint64
	entry TLBEntry
}

// lookup returns the memoized entry for (vpn, asid) if one is cached
// under the given TLB epoch, promoting a second-way hit to MRU.
func (mc *microTLB) lookup(vpn uint32, asid uint8, epoch uint64) (TLBEntry, bool) {
	w := &mc.way[0]
	if w.valid && w.vpn == vpn && w.asid == asid && w.epoch == epoch {
		return w.entry, true
	}
	w = &mc.way[1]
	if w.valid && w.vpn == vpn && w.asid == asid && w.epoch == epoch {
		hit := *w
		mc.way[1] = mc.way[0]
		mc.way[0] = hit
		return hit.entry, true
	}
	return TLBEntry{}, false
}

// fill records a fresh Lookup result as the MRU translation.
func (mc *microTLB) fill(vpn uint32, asid uint8, epoch uint64, e TLBEntry) {
	mc.way[1] = mc.way[0]
	mc.way[0] = microWay{valid: true, asid: asid, vpn: vpn, epoch: epoch, entry: e}
}

// Machine is one simulated computer: CPU, clock, physical memory, hardware
// TLB, and devices. A kernel installs itself as the trap handler; library
// operating systems and applications only ever touch the machine through
// the kernel's exported interface.
type Machine struct {
	Config Config
	Clock  *Clock
	Phys   *PhysMem
	TLB    *TLB
	CPU    CPU
	Timer  *Timer
	NIC    *NIC
	FB     *FrameBuffer
	Disk   *Disk

	handler TrapHandler

	// Host-speed fast path (see DESIGN.md "Host speed vs simulated
	// time"): split load/store last-translation caches — the analogue of
	// an iTLB/dTLB pair for a machine whose instruction fetch does not
	// translate — and the switch forcing the reference paths.
	mcLoad  microTLB
	mcStore microTLB
	slow    bool
	nojit   bool
}

// NewMachine builds a machine from a configuration.
func NewMachine(cfg Config) *Machine {
	clock := &Clock{}
	m := &Machine{
		Config: cfg,
		Clock:  clock,
		Phys:   NewPhysMem(clock, cfg.MemPages, cfg.MissRate),
		TLB:    NewTLB(clock, cfg.TLBSize),
	}
	m.Timer = NewTimer(m)
	m.NIC = NewNIC(m)
	m.FB = NewFrameBuffer(64)
	m.Disk = NewDisk(clock, cfg.DiskBlocks)
	m.CPU.Mode = ModeKernel
	m.CPU.IntrOn = true
	m.SetSlowPath(os.Getenv("EXO_SLOWPATH") == "1")
	m.SetNoJIT(os.Getenv("EXO_NOJIT") == "1")
	return m
}

// Reboot models a whole-machine power cycle after a crash. Two things
// survive: the clock (simulated time does not rewind because a machine
// died) and the disk's stable image (power is restored via
// Disk.PowerOn; the volatile write cache was already resolved by
// Disk.Crash). Everything else returns to its power-on state — physical
// memory zeroed in place, fresh TLB/timer/NIC/frame buffer, CPU in
// kernel mode with interrupts on, no trap handler. A fresh kernel must
// install itself exactly as at first boot, and any external NIC wiring
// (ether segment attachment) must be re-established by the harness.
func (m *Machine) Reboot() {
	m.Phys.Reset()
	m.TLB = NewTLB(m.Clock, m.Config.TLBSize)
	m.TLB.slow = m.slow
	m.Timer = NewTimer(m)
	m.NIC = NewNIC(m)
	m.FB = NewFrameBuffer(64)
	m.Disk.PowerOn()
	m.CPU = CPU{Mode: ModeKernel, IntrOn: true}
	m.handler = nil
	m.mcLoad = microTLB{}
	m.mcStore = microTLB{}
}

// SetTrapHandler installs the kernel.
func (m *Machine) SetTrapHandler(h TrapHandler) { m.handler = h }

// SlowPath reports whether the host-side fast paths are disabled.
func (m *Machine) SlowPath() bool { return m.slow }

// SetSlowPath forces (on=true) or re-enables (on=false) the reference
// execution paths: linear TLB probe, no translation micro-cache, and the
// unconditional per-step interrupt polling in vm.Interp.Run. The two
// settings are cycle-identical by contract; the switch exists so the
// invariance tests can prove it. Micro-caches are dropped on every
// transition.
func (m *Machine) SetSlowPath(on bool) {
	m.slow = on
	m.TLB.slow = on
	m.mcLoad = microTLB{}
	m.mcStore = microTLB{}
}

// NoJIT reports whether the trace-JIT execution tier is disabled on this
// machine (EXO_NOJIT=1, or SetNoJIT). The slow path disables it too —
// runRef never compiles — so EXO_SLOWPATH=1 subsumes EXO_NOJIT=1.
func (m *Machine) NoJIT() bool { return m.nojit }

// SetNoJIT forces (on=true) or re-enables (on=false) the interpreter-only
// fast engine: vm.Interp consults the flag at every Run entry, so a change
// takes effect at the next quantum. Like EXO_SLOWPATH, the setting is
// invisible in simulated time by contract; the invariance tests prove it.
func (m *Machine) SetNoJIT(on bool) { m.nojit = on }

// Micros converts cycles elapsed on this machine's clock to microseconds.
func (m *Machine) Micros(cycles uint64) float64 { return m.Config.Micros(cycles) }

// RaiseException records an exception in the CPU report registers, charges
// the hardware exception-entry cost, switches to kernel mode, and invokes
// the kernel. The kernel decides where execution continues by rewriting the
// CPU state before returning.
func (m *Machine) RaiseException(cause Exc, epc, badva uint32) {
	m.Clock.Tick(CostExcEntry)
	m.CPU.Cause = cause
	m.CPU.EPC = epc
	m.CPU.BadVAddr = badva
	m.CPU.Mode = ModeKernel
	if m.handler != nil {
		m.handler.HandleTrap(m)
	}
}

// PollInterrupts raises a pending interrupt if any line is asserted and
// interrupts are enabled. The VM calls this between instructions; native
// (Go-modelled) code paths call it at their loop boundaries.
func (m *Machine) PollInterrupts() {
	if !m.CPU.IntrOn || m.CPU.Pending == 0 {
		return
	}
	m.RaiseException(ExcInterrupt, m.CPU.PC, 0)
}

// Translate performs the MMU fast path for a data reference: virtual page
// lookup in the hardware TLB under the current ASID. On a hit it returns
// the physical address; on a miss or permission failure it returns the
// exception the hardware would raise. Alignment is the caller's problem
// (the VM checks it per access width).
//
// The split load/store micro-caches memoize only the TLB.Lookup result;
// the kernel-page and write-permission checks below run on every
// reference, so the outcome is identical to an uncached lookup for any
// CPU mode and any access kind.
func (m *Machine) Translate(va uint32, write bool) (uint32, Exc) {
	vpn := va >> PageShift
	var e TLBEntry
	if m.slow {
		var ok bool
		e, ok = m.TLB.Lookup(vpn, m.CPU.ASID)
		if !ok {
			return 0, missExc(write)
		}
	} else {
		mc := &m.mcLoad
		if write {
			mc = &m.mcStore
		}
		var hit bool
		e, hit = mc.lookup(vpn, m.CPU.ASID, m.TLB.epoch)
		if !hit {
			var ok bool
			e, ok = m.TLB.Lookup(vpn, m.CPU.ASID)
			if !ok {
				return 0, missExc(write)
			}
			mc.fill(vpn, m.CPU.ASID, m.TLB.epoch, e)
		}
	}
	return m.EntryTranslate(e, va, write)
}

// EntryTranslate applies the per-reference MMU checks to a memoized TLB
// entry and composes the physical address: the tail of Translate, split
// out for callers that cache TLB.Lookup results themselves under the TLB
// epoch (the vm trace-JIT tier keeps one such cache per compiled memory
// site). Permission checks run on every reference — never memoize them —
// so a cached entry behaves identically to a fresh lookup under any CPU
// mode and access kind.
func (m *Machine) EntryTranslate(e TLBEntry, va uint32, write bool) (uint32, Exc) {
	if e.Perms&PermKernel != 0 && m.CPU.Mode != ModeKernel {
		return 0, missExc(write)
	}
	if write && e.Perms&PermWrite == 0 {
		return 0, ExcTLBMod
	}
	return e.PFN<<PageShift | va&(PageSize-1), Exc(ExcNone)
}

// missExc is the exception a TLB miss raises for the access kind.
func missExc(write bool) Exc {
	if write {
		return ExcTLBMissS
	}
	return ExcTLBMissL
}

// TimerDue reports whether the interval timer's deadline has passed —
// exactly the condition under which Timer.Check fires. The execution
// cores use it to skip the Check call entirely while the clock is short
// of the deadline.
func (m *Machine) TimerDue() bool {
	return m.Timer.armed && m.Clock.Cycles() >= m.Timer.deadline
}

// EventHorizon returns the earliest cycle at which an asynchronous event
// can require service: the current cycle if an interrupt is already
// deliverable, the timer deadline if armed, and "never" (^uint64(0))
// otherwise. Any clock-advancing operation — a device delivery, a timer
// re-arm inside a trap handler — can shrink the horizon, so callers must
// re-derive it after every instruction rather than cache it across them.
func (m *Machine) EventHorizon() uint64 {
	if m.CPU.IntrOn && m.CPU.Pending != 0 {
		return m.Clock.Cycles()
	}
	if m.Timer.armed {
		return m.Timer.deadline
	}
	return ^uint64(0)
}
