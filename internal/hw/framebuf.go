package hw

import "fmt"

// FrameBuffer models a graphics framebuffer whose hardware checks an
// ownership tag on each access — the paper's example of a hardware-enforced
// secure binding ("the Silicon Graphics frame buffer hardware associates an
// ownership tag with each pixel"). The exokernel sets tags at allocation
// time; thereafter applications access pixels directly and the *hardware*
// enforces protection, with no kernel involvement on the access path.
type FrameBuffer struct {
	rows  int
	owner []uint32 // ownership tag per row; 0 = unowned
	pix   [][]byte
}

// NewFrameBuffer creates a framebuffer with the given number of rows.
func NewFrameBuffer(rows int) *FrameBuffer {
	fb := &FrameBuffer{rows: rows, owner: make([]uint32, rows), pix: make([][]byte, rows)}
	for i := range fb.pix {
		fb.pix[i] = make([]byte, 256)
	}
	return fb
}

// Rows reports the framebuffer height.
func (fb *FrameBuffer) Rows() int { return fb.rows }

// SetOwner tags a row with an owner (kernel-only operation; 0 clears).
func (fb *FrameBuffer) SetOwner(row int, owner uint32) error {
	if row < 0 || row >= fb.rows {
		return fmt.Errorf("hw: framebuffer row %d out of range", row)
	}
	fb.owner[row] = owner
	return nil
}

// Owner reports the tag on a row.
func (fb *FrameBuffer) Owner(row int) uint32 { return fb.owner[row] }

// Write stores pixels into a row if the tag matches; the check is done by
// "hardware" (here), not by the kernel.
func (fb *FrameBuffer) Write(owner uint32, row, col int, data []byte) error {
	if row < 0 || row >= fb.rows || col < 0 || col+len(data) > len(fb.pix[row]) {
		return fmt.Errorf("hw: framebuffer access out of range")
	}
	if fb.owner[row] != owner {
		return fmt.Errorf("hw: framebuffer row %d not owned by %d", row, owner)
	}
	copy(fb.pix[row][col:], data)
	return nil
}

// Read loads pixels from a row if the tag matches.
func (fb *FrameBuffer) Read(owner uint32, row, col int, dst []byte) error {
	if row < 0 || row >= fb.rows || col < 0 || col+len(dst) > len(fb.pix[row]) {
		return fmt.Errorf("hw: framebuffer access out of range")
	}
	if fb.owner[row] != owner {
		return fmt.Errorf("hw: framebuffer row %d not owned by %d", row, owner)
	}
	copy(dst, fb.pix[row][col:])
	return nil
}
