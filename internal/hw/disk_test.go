package hw

import "testing"

func TestDiskReadWriteRoundTrip(t *testing.T) {
	m := NewMachine(DEC5000)
	frame, _ := m.Phys.AllocFrame()
	copy(m.Phys.Page(frame), []byte("block payload"))
	if err := m.Disk.WriteBlock(7, m.Phys, frame); err != nil {
		t.Fatal(err)
	}
	frame2, _ := m.Phys.AllocFrame()
	if err := m.Disk.ReadBlock(7, m.Phys, frame2); err != nil {
		t.Fatal(err)
	}
	if string(m.Phys.Page(frame2)[:13]) != "block payload" {
		t.Error("round trip corrupted")
	}
	if m.Disk.Reads != 1 || m.Disk.Writes != 1 {
		t.Errorf("stats: %d reads, %d writes", m.Disk.Reads, m.Disk.Writes)
	}
}

func TestDiskBoundsChecked(t *testing.T) {
	m := NewMachine(DEC5000)
	frame, _ := m.Phys.AllocFrame()
	bad := uint32(m.Disk.NumBlocks())
	if err := m.Disk.ReadBlock(bad, m.Phys, frame); err == nil {
		t.Error("read past end succeeded")
	}
	if err := m.Disk.WriteBlock(bad, m.Phys, frame); err == nil {
		t.Error("write past end succeeded")
	}
}

func TestDiskSeekCostModel(t *testing.T) {
	m := NewMachine(DEC5000)
	frame, _ := m.Phys.AllocFrame()

	// Adjacent access: fixed cost + transfer only.
	m.Disk.ReadBlock(0, m.Phys, frame)
	before := m.Clock.Cycles()
	m.Disk.ReadBlock(1, m.Phys, frame)
	near := m.Clock.Cycles() - before

	// Long seek costs more.
	before = m.Clock.Cycles()
	m.Disk.ReadBlock(uint32(m.Disk.NumBlocks()-1), m.Phys, frame)
	far := m.Clock.Cycles() - before

	if far <= near {
		t.Errorf("full-stroke seek (%d) not costlier than adjacent (%d)", far, near)
	}
	if near < m.Disk.CostFixed {
		t.Errorf("adjacent access (%d) under the fixed cost (%d)", near, m.Disk.CostFixed)
	}
	if m.Disk.SeekBlocks == 0 {
		t.Error("seek distance not accounted")
	}
}

func TestDiskZeroFilled(t *testing.T) {
	m := NewMachine(DEC5000)
	frame, _ := m.Phys.AllocFrame()
	m.Phys.Page(frame)[0] = 0xFF
	if err := m.Disk.ReadBlock(100, m.Phys, frame); err != nil {
		t.Fatal(err)
	}
	if m.Phys.Page(frame)[0] != 0 {
		t.Error("untouched block not zero")
	}
}
