// Package hw is the simulated hardware: a MIPS R3000-class machine with
// physical memory, a 64-entry software-managed TLB, precise exceptions, an
// interval timer, a network interface, an ownership-tagged framebuffer,
// and a seek-modelled disk. It has no opinions: protection and policy live
// in whatever kernel installs itself as the trap handler.
//
// The package also owns the cycle cost model (costs.go): every hardware
// action advances the machine's Clock, which is the only time source in
// the simulation. Simulated results everywhere in this repository are
// cycle counts on this clock, converted to microseconds at the machine's
// configured rate.
package hw
