package hw

// Timer is the interval timer that demarcates CPU time slices. It is a
// cycle-deadline device: Arm sets the next firing point on the simulated
// clock, and Check (called by the execution cores between instructions or
// at native-path loop boundaries) asserts the timer interrupt line once the
// deadline passes.
type Timer struct {
	m        *Machine
	interval uint64
	deadline uint64
	armed    bool
	// Fired counts timer expirations since reset (diagnostics and tests).
	Fired uint64
}

// NewTimer creates the timer for a machine.
func NewTimer(m *Machine) *Timer { return &Timer{m: m} }

// Arm starts periodic firing every interval cycles.
func (t *Timer) Arm(interval uint64) {
	t.interval = interval
	t.deadline = t.m.Clock.Cycles() + interval
	t.armed = true
}

// Disarm stops the timer.
func (t *Timer) Disarm() { t.armed = false }

// Interval reports the programmed period in cycles (0 when disarmed).
func (t *Timer) Interval() uint64 {
	if !t.armed {
		return 0
	}
	return t.interval
}

// Check asserts IRQTimer if the deadline has passed, and re-arms for the
// next period. It returns true if the line was asserted.
func (t *Timer) Check() bool {
	if !t.armed || t.m.Clock.Cycles() < t.deadline {
		return false
	}
	t.Fired++
	t.deadline = t.m.Clock.Cycles() + t.interval
	t.m.CPU.Pending |= IRQTimer
	return true
}
