package hw

// Config describes a simulated machine model. The presets mirror Table 1 of
// the paper ("Experimental platforms"): three MIPS DECstations. SPECint92
// ratings are those the paper uses when scaling published numbers (the
// DEC5000/125 is rated 16.1; the DEC5000/200 is "1.2 times faster").
type Config struct {
	Name      string
	MHz       float64 // CPU clock
	SPECint92 float64 // published rating, used only for scaling comparisons
	MemPages  int     // physical memory size in pages
	TLBSize   int     // hardware TLB entries
	STLBSize  int     // Aegis software TLB entries (0 disables the STLB)
	// MissRate is the modelled primary-cache miss rate for data references,
	// expressed as 1 miss per MissRate references (0 disables the miss
	// model; every reference hits).
	MissRate int
	// DiskBlocks is the disk size in page-sized blocks.
	DiskBlocks int
}

// PageSize is the machine page size in bytes.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// WordSize is the machine word size in bytes.
const WordSize = 4

// Preset machine models, after Table 1 of the paper.
var (
	// DEC2100 models the DECstation 2100 (12.5 MHz R2000).
	DEC2100 = Config{Name: "DEC2100", MHz: 12.5, SPECint92: 6.5, MemPages: 2048, TLBSize: 64, STLBSize: 4096, DiskBlocks: 4096}
	// DEC3100 models the DECstation 3100 (16.67 MHz R2000).
	DEC3100 = Config{Name: "DEC3100", MHz: 16.67, SPECint92: 9.3, MemPages: 4096, TLBSize: 64, STLBSize: 4096, DiskBlocks: 8192}
	// DEC5000 models the DECstation 5000/125 (25 MHz R3000), the primary
	// evaluation machine in the paper.
	DEC5000 = Config{Name: "DEC5000/125", MHz: 25, SPECint92: 16.1, MemPages: 8192, TLBSize: 64, STLBSize: 4096, DiskBlocks: 16384}
)

// Micros converts a cycle count on this machine into microseconds.
func (c Config) Micros(cycles uint64) float64 {
	return float64(cycles) / c.MHz
}

// Platforms lists the preset configurations in the order of Table 1.
func Platforms() []Config { return []Config{DEC2100, DEC3100, DEC5000} }
