package hw

import (
	"testing"

	"exokernel/internal/fault"
)

// scriptedDisk replays fixed verdicts for block transfers (reads and
// writes share one script, consumed in call order).
type scriptedDisk struct {
	verdicts []fault.DiskVerdict
	i        int
}

func (s *scriptedDisk) take() fault.DiskVerdict {
	if s.i >= len(s.verdicts) {
		return fault.DiskVerdict{CorruptOff: -1}
	}
	v := s.verdicts[s.i]
	s.i++
	return v
}

func (s *scriptedDisk) ReadFault(b uint32) fault.DiskVerdict  { return s.take() }
func (s *scriptedDisk) WriteFault(b uint32) fault.DiskVerdict { return s.take() }

func TestDiskInjectedReadError(t *testing.T) {
	m := NewMachine(DEC5000)
	errv := fault.DiskVerdict{Err: injected(t), Delay: 5000, CorruptOff: -1}
	m.Disk.Fault = &scriptedDisk{verdicts: []fault.DiskVerdict{errv}}
	before := m.Clock.Cycles()
	if err := m.Disk.ReadBlock(0, m.Phys, 1); err == nil {
		t.Fatal("injected read error did not surface")
	}
	// The seek cost and the latency spike are both charged: a stalled
	// controller consumed the time before failing.
	if charged := m.Clock.Cycles() - before; charged < m.Disk.CostFixed+5000 {
		t.Errorf("failed read charged only %d cycles", charged)
	}
	if m.Disk.ReadErrs != 1 || m.Disk.SlowCycles != 5000 {
		t.Errorf("stats: ReadErrs=%d SlowCycles=%d", m.Disk.ReadErrs, m.Disk.SlowCycles)
	}
	if m.Disk.Reads != 0 {
		t.Errorf("failed transfer counted as a read: Reads=%d", m.Disk.Reads)
	}
	// The next transfer (past the script) succeeds.
	if err := m.Disk.ReadBlock(0, m.Phys, 1); err != nil {
		t.Errorf("clean read after injected error failed: %v", err)
	}
}

// injected obtains a real injector-made error so the device path carries
// the distinguishable type end to end.
func injected(t *testing.T) error {
	t.Helper()
	in := fault.New(fault.Config{Seed: 1, DiskReadErrPPM: 1_000_000})
	v := in.ReadFault(0)
	if v.Err == nil || !fault.IsInjected(v.Err) {
		t.Fatal("could not mint an injected error")
	}
	return v.Err
}

func TestDiskInjectedReadCorruption(t *testing.T) {
	m := NewMachine(DEC5000)
	page := m.Phys.Page(2)
	for i := range page {
		page[i] = byte(i)
	}
	if err := m.Disk.WriteBlock(3, m.Phys, 2); err != nil {
		t.Fatal(err)
	}
	m.Disk.Fault = &scriptedDisk{verdicts: []fault.DiskVerdict{
		{CorruptOff: 17, CorruptXor: 0x40},
	}}
	if err := m.Disk.ReadBlock(3, m.Phys, 4); err != nil {
		t.Fatal(err)
	}
	got := m.Phys.Page(4)
	if got[17] != byte(17)^0x40 {
		t.Errorf("byte 17 = %#x, want flipped", got[17])
	}
	if got[16] != 16 || got[18] != 18 {
		t.Error("corruption touched more than one byte")
	}
	// The platter itself is intact: a clean re-read sees the original.
	m.Disk.Fault = nil
	if err := m.Disk.ReadBlock(3, m.Phys, 5); err != nil {
		t.Fatal(err)
	}
	if m.Phys.Page(5)[17] != 17 {
		t.Error("read corruption damaged the platter")
	}
	if m.Disk.Corruptions != 1 {
		t.Errorf("Corruptions = %d", m.Disk.Corruptions)
	}
}

func TestDiskInjectedWriteCorruptionIsDurable(t *testing.T) {
	m := NewMachine(DEC5000)
	page := m.Phys.Page(2)
	for i := range page {
		page[i] = 0xAA
	}
	m.Disk.Fault = &scriptedDisk{verdicts: []fault.DiskVerdict{
		{CorruptOff: 5, CorruptXor: 0x01},
	}}
	if err := m.Disk.WriteBlock(7, m.Phys, 2); err != nil {
		t.Fatal(err)
	}
	m.Disk.Fault = nil
	if err := m.Disk.ReadBlock(7, m.Phys, 4); err != nil {
		t.Fatal(err)
	}
	if got := m.Phys.Page(4)[5]; got != 0xAA^0x01 {
		t.Errorf("platter byte 5 = %#x, want corrupted value", got)
	}
}

// scriptedPressure steals a fixed number of rx slots per delivery.
type scriptedPressure struct{ depth int }

func (s scriptedPressure) RxPressure() int { return s.depth }

func TestNICPressureShrinksRing(t *testing.T) {
	m := NewMachine(DEC5000)
	// Steal all but 2 of the 64 default slots.
	m.NIC.Fault = scriptedPressure{depth: 62}
	drops := 0
	m.NIC.OnDrop = func() { drops++ }
	for i := 0; i < 5; i++ {
		m.NIC.Deliver(Packet{Data: []byte{byte(i)}})
	}
	if m.NIC.Pending() != 2 {
		t.Errorf("pending = %d, want 2 under pressure", m.NIC.Pending())
	}
	if m.NIC.RxDropped != 3 || drops != 3 {
		t.Errorf("RxDropped = %d, OnDrop fired %d times, want 3", m.NIC.RxDropped, drops)
	}
	// Pressure lifted: the ring accepts again.
	m.NIC.Fault = nil
	m.NIC.Deliver(Packet{Data: []byte{9}})
	if m.NIC.Pending() != 3 {
		t.Errorf("pending = %d after pressure lifted", m.NIC.Pending())
	}
}
