package hw

// Register names for the simulated 32-register file. The conventions follow
// MIPS o32 loosely; what matters to the kernel is which registers are
// scratch (K0/K1/AT are the three the Aegis dispatcher may clobber after
// saving them) and which carry arguments/results.
const (
	RegZero = 0 // hardwired zero
	RegAT   = 1 // assembler temporary / dispatcher scratch
	RegV0   = 2 // result / syscall code
	RegV1   = 3 // result
	RegA0   = 4 // argument 0
	RegA1   = 5 // argument 1
	RegA2   = 6 // argument 2
	RegA3   = 7 // argument 3
	RegT0   = 8
	RegT1   = 9
	RegT2   = 10
	RegT3   = 11
	RegS0   = 16 // callee-saved s0..s7 = 16..23
	RegS1   = 17
	RegS2   = 18
	RegS3   = 19
	RegS4   = 20
	RegS5   = 21
	RegS6   = 22
	RegS7   = 23
	RegGP   = 28
	RegSP   = 29
	RegFP   = 30
	RegRA   = 31
	RegK0   = 26 // kernel/dispatcher scratch
	RegK1   = 27 // kernel/dispatcher scratch
)

// NumRegs is the size of the general-purpose register file.
const NumRegs = 32

// NumCalleeSaved counts the callee-saved registers (s0-s7, gp, sp, fp) an
// untrusting RPC stub must preserve.
const NumCalleeSaved = 11

// Mode is the processor privilege mode.
type Mode uint8

// Processor modes.
const (
	ModeKernel Mode = iota
	ModeUser
)

// Exc identifies a hardware exception cause.
type Exc uint8

// Exception causes, roughly the MIPS cause register values.
const (
	ExcNone      Exc = iota
	ExcInterrupt     // external interrupt (timer, NIC)
	ExcTLBMissL      // TLB miss on load/fetch
	ExcTLBMissS      // TLB miss on store
	ExcTLBMod        // write to a page mapped read-only (protection)
	ExcAddrErrL      // unaligned load
	ExcAddrErrS      // unaligned store
	ExcSyscall       // SYSCALL instruction
	ExcBreak         // BREAK instruction
	ExcOverflow      // arithmetic overflow (trapping add)
	ExcCoproc        // coprocessor unusable (FPU disabled)
	ExcPriv          // privileged instruction in user mode
)

var excNames = [...]string{
	ExcNone: "none", ExcInterrupt: "interrupt", ExcTLBMissL: "tlbl",
	ExcTLBMissS: "tlbs", ExcTLBMod: "mod", ExcAddrErrL: "adel",
	ExcAddrErrS: "ades", ExcSyscall: "syscall", ExcBreak: "break",
	ExcOverflow: "ovf", ExcCoproc: "cpu", ExcPriv: "priv",
}

func (e Exc) String() string {
	if int(e) < len(excNames) {
		return excNames[e]
	}
	return "exc?"
}

// IRQ identifies an interrupt source.
type IRQ uint8

// Interrupt lines.
const (
	IRQTimer IRQ = 1 << iota
	IRQNIC
)

// CPU is the simulated processor state visible to the kernel: the register
// file, program counter, mode, status bits, and the exception report
// registers (cause, EPC, BadVAddr).
type CPU struct {
	Regs     [NumRegs]uint32
	PC       uint32
	Mode     Mode
	ASID     uint8 // current address-space tag (TLB context)
	FPUOn    bool  // coprocessor-1 enable; off ⇒ COP1 raises ExcCoproc
	IntrOn   bool  // interrupt enable
	Cause    Exc
	EPC      uint32 // PC of the faulting instruction
	BadVAddr uint32 // faulting virtual address, for memory exceptions
	Pending  IRQ    // pending interrupt lines
}

// SetReg writes a register, keeping r0 hardwired to zero.
func (c *CPU) SetReg(r uint8, v uint32) {
	if r != RegZero {
		c.Regs[r] = v
	}
}

// Reg reads a register.
func (c *CPU) Reg(r uint8) uint32 { return c.Regs[r] }
