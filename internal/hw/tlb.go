package hw

// TLB permission bits.
const (
	PermValid  = 1 << iota // entry maps a page
	PermWrite              // page is writable (absence ⇒ write raises Mod/prot)
	PermKernel             // page accessible only in kernel mode
)

// TLBEntry is one hardware translation entry. Entries are tagged with the
// address-space ID of the owning environment, so the TLB need not be
// flushed on context switch (as on the MIPS R3000).
type TLBEntry struct {
	VPN   uint32 // virtual page number
	ASID  uint8  // address-space tag
	PFN   uint32 // physical frame number
	Perms uint8
}

// TLB models the hardware translation lookaside buffer: small, fully
// associative, software managed. Lookups on ordinary references are free on
// hits (they happen in parallel with the cache access); software management
// instructions (probe/write) charge their cost.
//
// Host-side fast path: Lookup is the hottest function in the simulator
// (every load and store translates), so alongside the architectural entry
// array the TLB keeps a hashed index from (VPN, ASID) to the entry the
// linear probe would return — a small open-addressed table, far cheaper
// per probe than a Go map. The index is rebuilt lazily after any
// mutation — `epoch` counts mutations so dependent caches (the machine's
// translation micro-cache) can invalidate, and `dirty` marks the index
// stale. None of this is architectural state: the entry array alone
// defines behaviour, and `slow` forces the reference linear probe.
type TLB struct {
	clock   *Clock
	entries []TLBEntry
	next    uint32 // wired random-replacement cursor (deterministic)

	epoch    uint64    // bumped on every mutation (over-counting is safe)
	dirty    bool      // index out of date with entries
	index    []tlbSlot // open-addressed: tlbKey → first matching entry index
	mask     uint32    // len(index) - 1 (power of two)
	sinceMut uint32    // lookups served linearly since the last mutation
	slow     bool      // force the reference linear probe
}

// rebuildThreshold is how many post-mutation lookups run on the linear
// probe before the hash index is rebuilt. A rebuild costs about as much
// as a couple dozen linear probes, so mutation-heavy phases (protection
// storms, TLB shootdowns) should not pay it per mutation; lookup-heavy
// phases (instruction streams) amortize one rebuild over millions of
// probes.
const rebuildThreshold = 16

// tlbSlot is one hash-index slot; idx < 0 marks it empty.
type tlbSlot struct {
	key uint32
	idx int32
}

// NewTLB creates a TLB with size entries.
func NewTLB(clock *Clock, size int) *TLB {
	return &TLB{clock: clock, entries: make([]TLBEntry, size), dirty: true}
}

// Size reports the number of entries.
func (t *TLB) Size() int { return len(t.entries) }

// Entries returns a copy of the architectural entry array. Diagnostic
// only (invariant checkers, tests): it charges nothing and bypasses the
// hash index, so it cannot perturb either clock or lookup state.
func (t *TLB) Entries() []TLBEntry {
	return append([]TLBEntry(nil), t.entries...)
}

// Epoch counts TLB mutations since creation. A cached translation is
// valid only while the epoch it was filled under still matches.
func (t *TLB) Epoch() uint64 { return t.epoch }

// tlbKey packs a lookup tag. VPNs are at most 20 bits (32-bit VA, 4 KB
// pages), so VPN and ASID pack into one uint32 without collision.
func tlbKey(vpn uint32, asid uint8) uint32 { return vpn<<8 | uint32(asid) }

// mutated records that the entry array changed: dependent caches must
// revalidate, and the hash index must be rebuilt before its next use.
func (t *TLB) mutated() {
	t.epoch++
	t.dirty = true
	t.sinceMut = 0
}

// hashSlot spreads a key over the index table (Fibonacci hashing).
func (t *TLB) hashSlot(key uint32) uint32 { return (key * 2654435769) & t.mask }

// rebuild reconstructs the hash index from the entry array. Where
// duplicate (VPN, ASID) tags exist (possible via WriteIndexed), the
// lowest index wins — exactly the entry the reference linear probe
// returns first. The table stays ≤ 25% loaded (4× the entry count,
// rounded up to a power of two), so probe chains are short.
func (t *TLB) rebuild() {
	if t.index == nil {
		size := uint32(16)
		for size < 4*uint32(len(t.entries)) {
			size *= 2
		}
		t.index = make([]tlbSlot, size)
		t.mask = size - 1
	}
	for i := range t.index {
		t.index[i] = tlbSlot{idx: -1}
	}
	for i := range t.entries {
		e := &t.entries[i]
		if e.Perms&PermValid == 0 {
			continue
		}
		key := tlbKey(e.VPN, e.ASID)
		s := t.hashSlot(key)
		for {
			slot := &t.index[s]
			if slot.idx < 0 {
				*slot = tlbSlot{key: key, idx: int32(i)}
				break
			}
			if slot.key == key {
				break // duplicate tag: earlier entry wins
			}
			s = (s + 1) & t.mask
		}
	}
	t.dirty = false
}

// Lookup translates (vpn, asid) on the fast path. It returns the entry and
// true on a hit. No cycles are charged: hardware lookup is overlapped.
func (t *TLB) Lookup(vpn uint32, asid uint8) (TLBEntry, bool) {
	if t.slow {
		return t.lookupLinear(vpn, asid)
	}
	if t.dirty {
		if t.sinceMut < rebuildThreshold {
			t.sinceMut++
			return t.lookupLinear(vpn, asid)
		}
		t.rebuild()
	}
	key := tlbKey(vpn, asid)
	for s := t.hashSlot(key); ; s = (s + 1) & t.mask {
		slot := &t.index[s]
		if slot.idx < 0 {
			return TLBEntry{}, false
		}
		if slot.key == key {
			return t.entries[slot.idx], true
		}
	}
}

// lookupLinear is the reference probe: first valid matching entry wins.
func (t *TLB) lookupLinear(vpn uint32, asid uint8) (TLBEntry, bool) {
	for i := range t.entries {
		e := &t.entries[i]
		if e.Perms&PermValid != 0 && e.VPN == vpn && e.ASID == asid {
			return *e, true
		}
	}
	return TLBEntry{}, false
}

// Probe searches for an entry (the TLBP instruction), charging probe cost.
// It returns the index or -1.
func (t *TLB) Probe(vpn uint32, asid uint8) int {
	t.clock.Tick(CostTLBProbe)
	for i := range t.entries {
		e := &t.entries[i]
		if e.Perms&PermValid != 0 && e.VPN == vpn && e.ASID == asid {
			return i
		}
	}
	return -1
}

// WriteRandom installs an entry at the replacement cursor (TLBWR). An
// existing entry for the same (VPN, ASID) is overwritten — duplicate tags
// would machine-check real MIPS hardware — and otherwise an invalid slot
// is preferred.
func (t *TLB) WriteRandom(e TLBEntry) {
	t.clock.Tick(CostTLBWrite)
	t.mutated()
	for i := range t.entries {
		if t.entries[i].Perms&PermValid != 0 && t.entries[i].VPN == e.VPN && t.entries[i].ASID == e.ASID {
			t.entries[i] = e
			return
		}
	}
	for i := range t.entries {
		if t.entries[i].Perms&PermValid == 0 {
			t.entries[i] = e
			return
		}
	}
	t.next = t.next*1103515245 + 12345
	t.entries[t.next%uint32(len(t.entries))] = e
}

// WriteIndexed installs an entry at a specific index (TLBWI).
func (t *TLB) WriteIndexed(i int, e TLBEntry) {
	t.clock.Tick(CostTLBWrite)
	t.mutated()
	t.entries[i] = e
}

// Invalidate removes any entry for (vpn, asid), charging a probe plus a
// write when present. It reports whether an entry was removed.
func (t *TLB) Invalidate(vpn uint32, asid uint8) bool {
	i := t.Probe(vpn, asid)
	if i < 0 {
		return false
	}
	t.clock.Tick(CostTLBWrite)
	t.mutated()
	t.entries[i] = TLBEntry{}
	return true
}

// InvalidateASID removes all entries for an address space (used when an
// ASID is recycled). Cost: one pass over the TLB.
func (t *TLB) InvalidateASID(asid uint8) {
	t.clock.Tick(uint64(len(t.entries)) * CostTLBWrite / 4)
	t.mutated()
	for i := range t.entries {
		if t.entries[i].ASID == asid {
			t.entries[i] = TLBEntry{}
		}
	}
}

// FlushFrame invalidates every entry mapping a physical frame, regardless
// of address space. The kernel uses it to break all cached bindings to a
// repossessed or deallocated page. Cost: one sweep of the TLB.
func (t *TLB) FlushFrame(pfn uint32) {
	t.clock.Tick(uint64(len(t.entries)) * CostTLBWrite / 4)
	t.mutated()
	for i := range t.entries {
		if t.entries[i].Perms&PermValid != 0 && t.entries[i].PFN == pfn {
			t.entries[i] = TLBEntry{}
		}
	}
}

// Flush invalidates the whole TLB.
func (t *TLB) Flush() {
	t.clock.Tick(uint64(len(t.entries)) * CostTLBWrite / 4)
	t.mutated()
	for i := range t.entries {
		t.entries[i] = TLBEntry{}
	}
}
