package hw

// TLB permission bits.
const (
	PermValid  = 1 << iota // entry maps a page
	PermWrite              // page is writable (absence ⇒ write raises Mod/prot)
	PermKernel             // page accessible only in kernel mode
)

// TLBEntry is one hardware translation entry. Entries are tagged with the
// address-space ID of the owning environment, so the TLB need not be
// flushed on context switch (as on the MIPS R3000).
type TLBEntry struct {
	VPN   uint32 // virtual page number
	ASID  uint8  // address-space tag
	PFN   uint32 // physical frame number
	Perms uint8
}

// TLB models the hardware translation lookaside buffer: small, fully
// associative, software managed. Lookups on ordinary references are free on
// hits (they happen in parallel with the cache access); software management
// instructions (probe/write) charge their cost.
type TLB struct {
	clock   *Clock
	entries []TLBEntry
	next    uint32 // wired random-replacement cursor (deterministic)
}

// NewTLB creates a TLB with size entries.
func NewTLB(clock *Clock, size int) *TLB {
	return &TLB{clock: clock, entries: make([]TLBEntry, size)}
}

// Size reports the number of entries.
func (t *TLB) Size() int { return len(t.entries) }

// Lookup translates (vpn, asid) on the fast path. It returns the entry and
// true on a hit. No cycles are charged: hardware lookup is overlapped.
func (t *TLB) Lookup(vpn uint32, asid uint8) (TLBEntry, bool) {
	for i := range t.entries {
		e := &t.entries[i]
		if e.Perms&PermValid != 0 && e.VPN == vpn && e.ASID == asid {
			return *e, true
		}
	}
	return TLBEntry{}, false
}

// Probe searches for an entry (the TLBP instruction), charging probe cost.
// It returns the index or -1.
func (t *TLB) Probe(vpn uint32, asid uint8) int {
	t.clock.Tick(CostTLBProbe)
	for i := range t.entries {
		e := &t.entries[i]
		if e.Perms&PermValid != 0 && e.VPN == vpn && e.ASID == asid {
			return i
		}
	}
	return -1
}

// WriteRandom installs an entry at the replacement cursor (TLBWR). An
// existing entry for the same (VPN, ASID) is overwritten — duplicate tags
// would machine-check real MIPS hardware — and otherwise an invalid slot
// is preferred.
func (t *TLB) WriteRandom(e TLBEntry) {
	t.clock.Tick(CostTLBWrite)
	for i := range t.entries {
		if t.entries[i].Perms&PermValid != 0 && t.entries[i].VPN == e.VPN && t.entries[i].ASID == e.ASID {
			t.entries[i] = e
			return
		}
	}
	for i := range t.entries {
		if t.entries[i].Perms&PermValid == 0 {
			t.entries[i] = e
			return
		}
	}
	t.next = t.next*1103515245 + 12345
	t.entries[t.next%uint32(len(t.entries))] = e
}

// WriteIndexed installs an entry at a specific index (TLBWI).
func (t *TLB) WriteIndexed(i int, e TLBEntry) {
	t.clock.Tick(CostTLBWrite)
	t.entries[i] = e
}

// Invalidate removes any entry for (vpn, asid), charging a probe plus a
// write when present. It reports whether an entry was removed.
func (t *TLB) Invalidate(vpn uint32, asid uint8) bool {
	i := t.Probe(vpn, asid)
	if i < 0 {
		return false
	}
	t.clock.Tick(CostTLBWrite)
	t.entries[i] = TLBEntry{}
	return true
}

// InvalidateASID removes all entries for an address space (used when an
// ASID is recycled). Cost: one pass over the TLB.
func (t *TLB) InvalidateASID(asid uint8) {
	t.clock.Tick(uint64(len(t.entries)) * CostTLBWrite / 4)
	for i := range t.entries {
		if t.entries[i].ASID == asid {
			t.entries[i] = TLBEntry{}
		}
	}
}

// FlushFrame invalidates every entry mapping a physical frame, regardless
// of address space. The kernel uses it to break all cached bindings to a
// repossessed or deallocated page. Cost: one sweep of the TLB.
func (t *TLB) FlushFrame(pfn uint32) {
	t.clock.Tick(uint64(len(t.entries)) * CostTLBWrite / 4)
	for i := range t.entries {
		if t.entries[i].Perms&PermValid != 0 && t.entries[i].PFN == pfn {
			t.entries[i] = TLBEntry{}
		}
	}
}

// Flush invalidates the whole TLB.
func (t *TLB) Flush() {
	t.clock.Tick(uint64(len(t.entries)) * CostTLBWrite / 4)
	for i := range t.entries {
		t.entries[i] = TLBEntry{}
	}
}
