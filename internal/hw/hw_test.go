package hw

import "testing"

func TestClockStopwatch(t *testing.T) {
	var c Clock
	w := c.StartWatch()
	c.Tick(10)
	c.Tick(5)
	if got := w.Elapsed(); got != 15 {
		t.Errorf("Elapsed = %d, want 15", got)
	}
	if c.Cycles() != 15 {
		t.Errorf("Cycles = %d, want 15", c.Cycles())
	}
	c.Reset()
	if c.Cycles() != 0 {
		t.Error("Reset did not zero the clock")
	}
}

func TestConfigMicros(t *testing.T) {
	if got := DEC5000.Micros(25); got != 1.0 {
		t.Errorf("25 cycles at 25 MHz = %v us, want 1", got)
	}
	if got := DEC2100.Micros(25); got != 2.0 {
		t.Errorf("25 cycles at 12.5 MHz = %v us, want 2", got)
	}
	if len(Platforms()) != 3 {
		t.Errorf("Platforms() = %d entries, want 3", len(Platforms()))
	}
}

func TestPhysMemAllocFree(t *testing.T) {
	var c Clock
	m := NewPhysMem(&c, 8, 0)
	if m.FreeFrames() != 8 {
		t.Fatalf("FreeFrames = %d, want 8", m.FreeFrames())
	}
	f, ok := m.AllocFrame()
	if !ok {
		t.Fatal("AllocFrame failed")
	}
	if !m.AllocFrameAt(5) {
		t.Fatal("AllocFrameAt(5) failed")
	}
	if m.AllocFrameAt(5) {
		t.Fatal("AllocFrameAt(5) succeeded twice")
	}
	if m.FreeFrames() != 6 {
		t.Errorf("FreeFrames = %d, want 6", m.FreeFrames())
	}
	m.WriteWord(f*PageSize+4, 0xDEADBEEF)
	if got := m.ReadWord(f*PageSize + 4); got != 0xDEADBEEF {
		t.Errorf("ReadWord = %#x", got)
	}
	if err := m.FreeFrame(f); err != nil {
		t.Fatal(err)
	}
	// Freed frames are zeroed.
	if got := m.ReadWord(f*PageSize + 4); got != 0 {
		t.Errorf("freed frame not zeroed: %#x", got)
	}
	if err := m.FreeFrame(99); err == nil {
		t.Error("FreeFrame(99) should fail")
	}
}

func TestPhysMemExhaustion(t *testing.T) {
	var c Clock
	m := NewPhysMem(&c, 2, 0)
	if _, ok := m.AllocFrame(); !ok {
		t.Fatal("first alloc failed")
	}
	if _, ok := m.AllocFrame(); !ok {
		t.Fatal("second alloc failed")
	}
	if _, ok := m.AllocFrame(); ok {
		t.Fatal("alloc beyond capacity succeeded")
	}
}

func TestPhysMemAccessWidths(t *testing.T) {
	var c Clock
	m := NewPhysMem(&c, 1, 0)
	m.WriteWord(0, 0x04030201)
	if m.LoadByte(0) != 0x01 || m.LoadByte(3) != 0x04 {
		t.Error("little-endian byte order violated")
	}
	m.WriteHalf(4, 0xBEEF)
	if m.ReadHalf(4) != 0xBEEF {
		t.Error("halfword round trip failed")
	}
	m.StoreByte(8, 0x7F)
	if m.LoadByte(8) != 0x7F {
		t.Error("byte round trip failed")
	}
}

func TestPhysMemCharges(t *testing.T) {
	var c Clock
	m := NewPhysMem(&c, 1, 0)
	before := c.Cycles()
	m.ReadWord(0)
	if c.Cycles() != before+CostMemWord {
		t.Errorf("cached read charged %d, want %d", c.Cycles()-before, CostMemWord)
	}
	before = c.Cycles()
	m.ReadWordUncached(0)
	if c.Cycles() != before+CostUncached {
		t.Errorf("uncached read charged %d, want %d", c.Cycles()-before, CostUncached)
	}
	before = c.Cycles()
	m.CopyIn(0, make([]byte, 64))
	if got := c.Cycles() - before; got != 16*CostMemWord {
		t.Errorf("CopyIn(64B) charged %d, want %d", got, 16*CostMemWord)
	}
}

func TestCacheMissModel(t *testing.T) {
	var c Clock
	m := NewPhysMem(&c, 1, 4) // 1 miss per ~4 refs
	before := c.Cycles()
	for i := 0; i < 1000; i++ {
		m.ReadWord(0)
	}
	extra := c.Cycles() - before - 1000*CostMemWord
	misses := extra / CostCacheMiss
	if misses < 100 || misses > 500 {
		t.Errorf("miss model produced %d misses out of 1000 refs, want roughly 250", misses)
	}
}

func TestTLBLookupAndPerms(t *testing.T) {
	var c Clock
	tlb := NewTLB(&c, 4)
	tlb.WriteRandom(TLBEntry{VPN: 7, ASID: 1, PFN: 3, Perms: PermValid})
	if _, ok := tlb.Lookup(7, 1); !ok {
		t.Fatal("lookup missed installed entry")
	}
	if _, ok := tlb.Lookup(7, 2); ok {
		t.Fatal("lookup hit wrong ASID")
	}
	if _, ok := tlb.Lookup(8, 1); ok {
		t.Fatal("lookup hit wrong VPN")
	}
}

func TestTLBOverwriteSameTag(t *testing.T) {
	var c Clock
	tlb := NewTLB(&c, 4)
	tlb.WriteRandom(TLBEntry{VPN: 7, ASID: 1, PFN: 3, Perms: PermValid})
	tlb.WriteRandom(TLBEntry{VPN: 7, ASID: 1, PFN: 9, Perms: PermValid | PermWrite})
	e, ok := tlb.Lookup(7, 1)
	if !ok || e.PFN != 9 || e.Perms&PermWrite == 0 {
		t.Fatalf("stale entry survived: %+v (ok=%v)", e, ok)
	}
	// Exactly one slot holds the tag (duplicates would machine-check).
	live := 0
	for i := 0; i < tlb.Size(); i++ {
		if idx := tlb.Probe(7, 1); idx >= 0 {
			live = 1
			tlb.WriteIndexed(idx, TLBEntry{})
		}
	}
	if live != 1 {
		t.Fatalf("expected exactly one live entry, probe pattern says %d", live)
	}
	if tlb.Probe(7, 1) >= 0 {
		t.Fatal("duplicate entry for the same tag")
	}
}

func TestTLBEvictionAndFlush(t *testing.T) {
	var c Clock
	tlb := NewTLB(&c, 4)
	for i := uint32(0); i < 8; i++ {
		tlb.WriteRandom(TLBEntry{VPN: i, ASID: 1, PFN: i, Perms: PermValid})
	}
	hits := 0
	for i := uint32(0); i < 8; i++ {
		if _, ok := tlb.Lookup(i, 1); ok {
			hits++
		}
	}
	if hits != 4 {
		t.Errorf("after 8 inserts into a 4-entry TLB, %d entries live, want 4", hits)
	}
	tlb.FlushFrame(2)
	if _, ok := tlb.Lookup(2, 1); ok {
		t.Error("FlushFrame left the frame mapped")
	}
	tlb.Flush()
	for i := uint32(0); i < 8; i++ {
		if _, ok := tlb.Lookup(i, 1); ok {
			t.Fatal("Flush left entries")
		}
	}
}

func TestTLBInvalidate(t *testing.T) {
	var c Clock
	tlb := NewTLB(&c, 4)
	tlb.WriteRandom(TLBEntry{VPN: 1, ASID: 1, PFN: 1, Perms: PermValid})
	if !tlb.Invalidate(1, 1) {
		t.Fatal("Invalidate missed present entry")
	}
	if tlb.Invalidate(1, 1) {
		t.Fatal("Invalidate hit absent entry")
	}
	tlb.WriteRandom(TLBEntry{VPN: 2, ASID: 3, PFN: 1, Perms: PermValid})
	tlb.InvalidateASID(3)
	if _, ok := tlb.Lookup(2, 3); ok {
		t.Error("InvalidateASID left entry")
	}
}

func TestMachineTranslate(t *testing.T) {
	m := NewMachine(DEC5000)
	m.TLB.WriteRandom(TLBEntry{VPN: 0x10, ASID: 0, PFN: 2, Perms: PermValid})
	if _, exc := m.Translate(0x20<<PageShift, false); exc != ExcTLBMissL {
		t.Errorf("unmapped read exc = %v, want tlbl", exc)
	}
	if _, exc := m.Translate(0x20<<PageShift, true); exc != ExcTLBMissS {
		t.Errorf("unmapped write exc = %v, want tlbs", exc)
	}
	pa, exc := m.Translate(0x10<<PageShift|8, false)
	if exc != ExcNone || pa != 2<<PageShift|8 {
		t.Errorf("Translate = %#x, %v", pa, exc)
	}
	if _, exc := m.Translate(0x10<<PageShift, true); exc != ExcTLBMod {
		t.Errorf("read-only write exc = %v, want mod", exc)
	}
}

func TestMachineKernelOnlyPages(t *testing.T) {
	m := NewMachine(DEC5000)
	m.TLB.WriteRandom(TLBEntry{VPN: 1, ASID: 0, PFN: 1, Perms: PermValid | PermKernel})
	m.CPU.Mode = ModeUser
	if _, exc := m.Translate(1<<PageShift, false); exc == ExcNone {
		t.Error("user access to kernel page succeeded")
	}
	m.CPU.Mode = ModeKernel
	if _, exc := m.Translate(1<<PageShift, false); exc != ExcNone {
		t.Error("kernel access to kernel page failed")
	}
}

type recordingHandler struct {
	causes []Exc
}

func (h *recordingHandler) HandleTrap(m *Machine) {
	h.causes = append(h.causes, m.CPU.Cause)
}

func TestRaiseExceptionChargesAndDispatches(t *testing.T) {
	m := NewMachine(DEC5000)
	h := &recordingHandler{}
	m.SetTrapHandler(h)
	before := m.Clock.Cycles()
	m.RaiseException(ExcSyscall, 42, 0)
	if len(h.causes) != 1 || h.causes[0] != ExcSyscall {
		t.Fatalf("handler saw %v", h.causes)
	}
	if m.CPU.EPC != 42 {
		t.Errorf("EPC = %d, want 42", m.CPU.EPC)
	}
	if m.CPU.Mode != ModeKernel {
		t.Error("exception did not enter kernel mode")
	}
	if m.Clock.Cycles() != before+CostExcEntry {
		t.Errorf("exception charged %d", m.Clock.Cycles()-before)
	}
}

func TestTimer(t *testing.T) {
	m := NewMachine(DEC5000)
	m.Timer.Arm(100)
	if m.Timer.Check() {
		t.Fatal("timer fired immediately")
	}
	m.Clock.Tick(101)
	if !m.Timer.Check() {
		t.Fatal("timer did not fire after deadline")
	}
	if m.CPU.Pending&IRQTimer == 0 {
		t.Fatal("IRQTimer not asserted")
	}
	m.CPU.Pending = 0
	m.Timer.Disarm()
	m.Clock.Tick(1000)
	if m.Timer.Check() {
		t.Fatal("disarmed timer fired")
	}
	if m.Timer.Interval() != 0 {
		t.Error("disarmed Interval != 0")
	}
}

func TestNICDeliverRecvAndDrop(t *testing.T) {
	m := NewMachine(DEC5000)
	for i := 0; i < 70; i++ {
		m.NIC.Deliver(Packet{Data: []byte{byte(i)}})
	}
	if m.NIC.RxDropped != 6 {
		t.Errorf("RxDropped = %d, want 6 (ring depth 64)", m.NIC.RxDropped)
	}
	if m.CPU.Pending&IRQNIC == 0 {
		t.Fatal("IRQNIC not asserted")
	}
	n := 0
	for {
		if _, ok := m.NIC.Recv(); !ok {
			break
		}
		n++
	}
	if n != 64 {
		t.Errorf("received %d packets, want 64", n)
	}
	if m.CPU.Pending&IRQNIC != 0 {
		t.Error("IRQNIC still pending after drain")
	}
}

func TestNICImmediateInterrupt(t *testing.T) {
	m := NewMachine(DEC5000)
	h := &recordingHandler{}
	m.SetTrapHandler(h)
	m.NIC.Deliver(Packet{Data: []byte{1}})
	if len(h.causes) != 1 || h.causes[0] != ExcInterrupt {
		t.Fatalf("immediate interrupt not raised: %v", h.causes)
	}
	// With interrupts masked, delivery only sets the pending bit.
	m.CPU.IntrOn = false
	m.NIC.Deliver(Packet{Data: []byte{2}})
	if len(h.causes) != 1 {
		t.Fatal("interrupt raised while masked")
	}
	if m.CPU.Pending&IRQNIC == 0 {
		t.Fatal("pending bit lost while masked")
	}
}

func TestNICSendChargesAndForwards(t *testing.T) {
	m := NewMachine(DEC5000)
	var sent []Packet
	m.NIC.ConnectTx(func(p Packet) { sent = append(sent, p) })
	before := m.Clock.Cycles()
	m.NIC.Send(Packet{Data: make([]byte, 60)})
	if len(sent) != 1 {
		t.Fatal("packet not transmitted")
	}
	if got := m.Clock.Cycles() - before; got != 15*CostMemWord {
		t.Errorf("Send charged %d, want %d", got, 15*CostMemWord)
	}
}

func TestFrameBufferOwnership(t *testing.T) {
	fb := NewFrameBuffer(4)
	if err := fb.SetOwner(1, 42); err != nil {
		t.Fatal(err)
	}
	if err := fb.Write(42, 1, 0, []byte{1, 2, 3}); err != nil {
		t.Fatalf("owner write rejected: %v", err)
	}
	if err := fb.Write(7, 1, 0, []byte{9}); err == nil {
		t.Fatal("non-owner write accepted")
	}
	buf := make([]byte, 3)
	if err := fb.Read(42, 1, 0, buf); err != nil || buf[1] != 2 {
		t.Fatalf("owner read failed: %v %v", err, buf)
	}
	if err := fb.Read(7, 1, 0, buf); err == nil {
		t.Fatal("non-owner read accepted")
	}
	if err := fb.SetOwner(99, 1); err == nil {
		t.Fatal("out-of-range row accepted")
	}
}
