package hw

// Packet is one frame on the wire. Payload layout is up to the protocols
// (the kernel treats it as opaque bytes; packet filters inspect it).
type Packet struct {
	Data []byte
}

// NICFault models receive-queue pressure: per delivery it reports how
// many ring slots are artificially occupied (DMA descriptors stolen by a
// misbehaving peer device, in hardware terms). nil means none.
type NICFault interface {
	RxPressure() int
}

// NIC models the network interface: a receive queue fed by the wire and a
// transmit hook connected to an Ethernet segment (internal/ether). Receive
// raises IRQNIC; the kernel demultiplexes with packet filters and copies
// the payload wherever the owning application (or its ASH) directs.
type NIC struct {
	m  *Machine
	rx []Packet
	tx func(Packet)

	// Fault, when non-nil, injects receive-queue pressure.
	Fault NICFault
	// OnDrop, when non-nil, is invoked for every frame dropped at the
	// ring (overflow or injected pressure) — the kernel wires it into
	// its accounting registry so silent hardware drops become visible.
	OnDrop func()

	// Stats
	RxCount, TxCount, RxDropped uint64
	rxLimit                     int
}

// NewNIC creates a NIC with a default receive-ring depth of 64 packets.
func NewNIC(m *Machine) *NIC { return &NIC{m: m, rxLimit: 64} }

// ConnectTx installs the transmit hook (set by the Ethernet segment).
func (n *NIC) ConnectTx(tx func(Packet)) { n.tx = tx }

// Deliver places a packet arriving from the wire into the receive ring and
// asserts the NIC interrupt. Packets beyond the ring depth are dropped, as
// real hardware would. If interrupts are enabled the interrupt preempts
// immediately — this is what lets an ASH reply without anyone being
// scheduled; when the kernel is running with interrupts masked (e.g.
// inside an ASH), the pending bit is picked up at the next poll.
func (n *NIC) Deliver(p Packet) {
	limit := n.rxLimit
	if n.Fault != nil {
		limit -= n.Fault.RxPressure()
	}
	if len(n.rx) >= limit {
		n.RxDropped++
		if n.OnDrop != nil {
			n.OnDrop()
		}
		return
	}
	n.rx = append(n.rx, p)
	n.RxCount++
	n.m.CPU.Pending |= IRQNIC
	if n.m.CPU.IntrOn && n.m.handler != nil {
		n.m.RaiseException(ExcInterrupt, n.m.CPU.PC, 0)
	}
}

// Pending reports how many received packets await the kernel.
func (n *NIC) Pending() int { return len(n.rx) }

// Recv removes the next received packet. The kernel pays the per-word DMA
// copy cost when it moves the payload into application memory, not here.
func (n *NIC) Recv() (Packet, bool) {
	if len(n.rx) == 0 {
		return Packet{}, false
	}
	p := n.rx[0]
	n.rx = n.rx[1:]
	if len(n.rx) == 0 {
		n.m.CPU.Pending &^= IRQNIC
	}
	return p, true
}

// Send transmits a packet onto the wire. Charges the per-word cost of
// copying the frame into the transmit buffer (the paper: "messages are
// simply copied from application space into a transmit buffer").
func (n *NIC) Send(p Packet) {
	words := (len(p.Data) + WordSize - 1) / WordSize
	n.m.Clock.Tick(uint64(words) * CostMemWord)
	n.TxCount++
	if n.tx != nil {
		n.tx(p)
	}
}
