package hw

// Clock is the simulated cycle counter. It is the only time source inside
// the simulation: every hardware action advances it by a cost from
// costs.go, and all reported "simulated microseconds" derive from it.
type Clock struct {
	cycles uint64
}

// Tick advances the clock by n cycles.
func (c *Clock) Tick(n uint64) { c.cycles += n }

// Cycles reports the total cycles elapsed since reset.
func (c *Clock) Cycles() uint64 { return c.cycles }

// Reset zeroes the clock.
func (c *Clock) Reset() { c.cycles = 0 }

// Stopwatch measures an interval on the simulated clock.
type Stopwatch struct {
	clock *Clock
	start uint64
}

// StartWatch begins timing an interval.
func (c *Clock) StartWatch() Stopwatch { return Stopwatch{clock: c, start: c.cycles} }

// Elapsed reports cycles elapsed since the stopwatch started.
func (s Stopwatch) Elapsed() uint64 { return s.clock.cycles - s.start }
