package hw

import (
	"bytes"
	"errors"
	"testing"
)

func writeBlockBytes(t *testing.T, m *Machine, b uint32, frame uint32, data []byte) {
	t.Helper()
	page := m.Phys.Page(frame)
	clear(page)
	copy(page, data)
	if err := m.Disk.WriteBlock(b, m.Phys, frame); err != nil {
		t.Fatal(err)
	}
}

func TestDiskWriteCacheAndFlush(t *testing.T) {
	m := NewMachine(DEC5000)
	frame, _ := m.Phys.AllocFrame()
	writeBlockBytes(t, m, 3, frame, []byte("volatile"))

	// Readable immediately (read-your-writes), but not yet stable.
	frame2, _ := m.Phys.AllocFrame()
	if err := m.Disk.ReadBlock(3, m.Phys, frame2); err != nil {
		t.Fatal(err)
	}
	if string(m.Phys.Page(frame2)[:8]) != "volatile" {
		t.Fatal("read did not see cached write")
	}
	if string(m.Disk.Peek(3)[:8]) == "volatile" {
		t.Fatal("write reached the platter without a flush")
	}
	if m.Disk.CacheDirty() != 1 {
		t.Fatalf("CacheDirty = %d, want 1", m.Disk.CacheDirty())
	}

	// Flush is the barrier.
	if err := m.Disk.Flush(); err != nil {
		t.Fatal(err)
	}
	if string(m.Disk.Peek(3)[:8]) != "volatile" {
		t.Fatal("flush did not stabilize the write")
	}
	if m.Disk.CacheDirty() != 0 || m.Disk.Flushes != 1 || m.Disk.FlushedBlocks != 1 {
		t.Fatalf("flush stats: dirty=%d flushes=%d blocks=%d",
			m.Disk.CacheDirty(), m.Disk.Flushes, m.Disk.FlushedBlocks)
	}
	// An empty flush is free and uncounted.
	c0 := m.Clock.Cycles()
	if err := m.Disk.Flush(); err != nil {
		t.Fatal(err)
	}
	if m.Clock.Cycles() != c0 || m.Disk.Flushes != 1 {
		t.Error("empty flush charged or counted")
	}
}

func TestDiskCrashDropsSeededSubset(t *testing.T) {
	run := func(seed uint64) (kept, lost int, image [][]byte) {
		m := NewMachine(DEC5000)
		frame, _ := m.Phys.AllocFrame()
		// One stable write, then eight cached ones.
		writeBlockBytes(t, m, 0, frame, []byte("stable"))
		if err := m.Disk.Flush(); err != nil {
			t.Fatal(err)
		}
		for b := uint32(1); b <= 8; b++ {
			writeBlockBytes(t, m, b, frame, []byte{byte(b), 0xAA})
		}
		kept, lost = m.Disk.Crash(seed)
		for b := uint32(0); b <= 8; b++ {
			image = append(image, append([]byte(nil), m.Disk.Peek(b)[:2]...))
		}
		return kept, lost, image
	}

	kept, lost, image := run(42)
	if kept+lost != 8 {
		t.Fatalf("kept %d + lost %d != 8 cached writes", kept, lost)
	}
	if kept == 0 || lost == 0 {
		t.Fatalf("seed 42 should split the cache (kept=%d lost=%d)", kept, lost)
	}
	if string(image[0][:2]) != "st" {
		t.Fatal("crash damaged the stable image")
	}
	// Same seed, same fate — the crash is replayable.
	kept2, lost2, image2 := run(42)
	if kept != kept2 || lost != lost2 {
		t.Fatalf("crash not deterministic: (%d,%d) vs (%d,%d)", kept, lost, kept2, lost2)
	}
	for b := range image {
		if !bytes.Equal(image[b], image2[b]) {
			t.Fatalf("block %d differs across same-seed crashes", b)
		}
	}
	// A different seed picks a different subset (overwhelmingly likely
	// for 8 independent coin flips; pinned here for these two seeds).
	_, _, image3 := run(43)
	same := true
	for b := range image {
		if !bytes.Equal(image[b], image3[b]) {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical crash outcomes")
	}
}

func TestDiskPowerFailStopsAllIO(t *testing.T) {
	m := NewMachine(DEC5000)
	frame, _ := m.Phys.AllocFrame()
	writeBlockBytes(t, m, 1, frame, []byte("x"))
	m.Disk.PowerOff()
	if err := m.Disk.ReadBlock(1, m.Phys, frame); !errors.Is(err, ErrPowerFail) {
		t.Fatalf("read after power-off: %v", err)
	}
	if err := m.Disk.WriteBlock(1, m.Phys, frame); !errors.Is(err, ErrPowerFail) {
		t.Fatalf("write after power-off: %v", err)
	}
	if err := m.Disk.Flush(); !errors.Is(err, ErrPowerFail) {
		t.Fatalf("flush after power-off: %v", err)
	}
	if !m.Disk.PowerFailed() || m.Disk.PowerFails != 1 {
		t.Fatal("power state not recorded")
	}
	m.Disk.Crash(1)
	m.Disk.PowerOn()
	if err := m.Disk.ReadBlock(1, m.Phys, frame); err != nil {
		t.Fatalf("read after power-on: %v", err)
	}
}

// hookAt fails the power at the completion of the nth write.
type hookAt struct {
	n      uint64
	writes uint64
}

func (h *hookAt) PowerFail(write bool, b uint32, cycle uint64) bool {
	if !write {
		return false
	}
	h.writes++
	return h.writes == h.n
}

func TestDiskPowerHookFiresAtExactWriteBoundary(t *testing.T) {
	m := NewMachine(DEC5000)
	m.Disk.Power = &hookAt{n: 3}
	frame, _ := m.Phys.AllocFrame()
	for i := uint32(1); i <= 2; i++ {
		writeBlockBytes(t, m, i, frame, []byte{byte(i)})
	}
	// Third write completes — lands in the cache — but the caller sees
	// the power failure, not success.
	page := m.Phys.Page(frame)
	clear(page)
	copy(page, []byte{3})
	if err := m.Disk.WriteBlock(3, m.Phys, frame); !errors.Is(err, ErrPowerFail) {
		t.Fatalf("third write: %v", err)
	}
	if m.Disk.CacheDirty() != 3 {
		t.Fatalf("CacheDirty = %d: the in-flight write should be cached (fate undecided)",
			m.Disk.CacheDirty())
	}
	if !m.Disk.PowerFailed() {
		t.Fatal("disk should be dead")
	}
}

func TestMachineRebootPreservesClockAndDisk(t *testing.T) {
	m := NewMachine(DEC5000)
	frame, _ := m.Phys.AllocFrame()
	writeBlockBytes(t, m, 5, frame, []byte("survives"))
	if err := m.Disk.Flush(); err != nil {
		t.Fatal(err)
	}
	m.TLB.WriteRandom(TLBEntry{VPN: 9, PFN: 9, Perms: PermValid})
	cycles := m.Clock.Cycles()
	m.Disk.PowerOff()
	m.Disk.Crash(1)

	m.Reboot()

	if m.Clock.Cycles() != cycles {
		t.Fatal("reboot rewound the clock")
	}
	if string(m.Disk.Peek(5)[:8]) != "survives" {
		t.Fatal("reboot lost the stable disk image")
	}
	if m.Disk.PowerFailed() {
		t.Fatal("reboot did not restore disk power")
	}
	if m.Phys.FreeFrames() != m.Phys.NumPages() {
		t.Fatalf("physical memory not reset: %d free of %d",
			m.Phys.FreeFrames(), m.Phys.NumPages())
	}
	if _, ok := m.TLB.Lookup(9, 0); ok {
		t.Fatal("TLB survived the reboot")
	}
	if m.CPU.Mode != ModeKernel || !m.CPU.IntrOn || m.CPU.Pending != 0 {
		t.Fatal("CPU not in power-on state")
	}
	// The machine is usable: memory zeroed, allocation works.
	f2, ok := m.Phys.AllocFrame()
	if !ok {
		t.Fatal("no frames after reboot")
	}
	for _, by := range m.Phys.Page(f2) {
		if by != 0 {
			t.Fatal("reboot left stale bytes in physical memory")
		}
	}
}
