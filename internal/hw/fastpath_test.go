package hw

import "testing"

// The host-speed fast paths (hashed TLB index, translation micro-cache)
// must be invisible: for any operation sequence, a machine on the fast
// path and one forced to the reference path agree on every lookup result
// and every charged cycle. These tests drive both side by side.

// lcgT is a deterministic pseudo-random source for test sequences.
type lcgT uint64

func (r *lcgT) next() uint32 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint32(*r >> 33)
}

// TestTLBHashedMatchesLinear drives a hashed-index TLB and a linear-probe
// TLB through an identical random mutation/lookup sequence and requires
// identical results and identical cycle charges throughout.
func TestTLBHashedMatchesLinear(t *testing.T) {
	var cFast, cSlow Clock
	fast := NewTLB(&cFast, 16)
	slow := NewTLB(&cSlow, 16)
	slow.slow = true

	r := lcgT(42)
	for step := 0; step < 20000; step++ {
		op := r.next() % 10
		vpn := r.next() % 24 // small space forces tag collisions and evictions
		asid := uint8(r.next() % 3)
		pfn := r.next() % 64
		perms := uint8(PermValid | uint8(r.next()&uint32(PermWrite|PermKernel)))
		switch op {
		case 0, 1:
			e := TLBEntry{VPN: vpn, ASID: asid, PFN: pfn, Perms: perms}
			fast.WriteRandom(e)
			slow.WriteRandom(e)
		case 2:
			i := int(r.next()) % fast.Size()
			e := TLBEntry{VPN: vpn, ASID: asid, PFN: pfn, Perms: perms}
			fast.WriteIndexed(i, e)
			slow.WriteIndexed(i, e)
		case 3:
			if fast.Invalidate(vpn, asid) != slow.Invalidate(vpn, asid) {
				t.Fatalf("step %d: Invalidate(%d, %d) diverged", step, vpn, asid)
			}
		case 4:
			fast.InvalidateASID(asid)
			slow.InvalidateASID(asid)
		case 5:
			fast.FlushFrame(pfn)
			slow.FlushFrame(pfn)
		default:
			ef, okf := fast.Lookup(vpn, asid)
			es, oks := slow.Lookup(vpn, asid)
			if okf != oks || ef != es {
				t.Fatalf("step %d: Lookup(%d, %d) = %+v/%v fast, %+v/%v linear",
					step, vpn, asid, ef, okf, es, oks)
			}
		}
		if cFast.Cycles() != cSlow.Cycles() {
			t.Fatalf("step %d: clocks diverged: fast %d, linear %d", step, cFast.Cycles(), cSlow.Cycles())
		}
	}
	// Exhaustive sweep at the end: every (vpn, asid) in range agrees.
	for vpn := uint32(0); vpn < 24; vpn++ {
		for asid := uint8(0); asid < 3; asid++ {
			ef, okf := fast.Lookup(vpn, asid)
			es, oks := slow.Lookup(vpn, asid)
			if okf != oks || ef != es {
				t.Fatalf("final: Lookup(%d, %d) = %+v/%v fast, %+v/%v linear", vpn, asid, ef, okf, es, oks)
			}
		}
	}
}

// TestTLBHashedDuplicateTagFirstWins pins the first-match-wins semantics
// of the reference linear probe: when WriteIndexed creates duplicate
// (VPN, ASID) tags, the hashed index must return the lowest-indexed one.
func TestTLBHashedDuplicateTagFirstWins(t *testing.T) {
	var c Clock
	tlb := NewTLB(&c, 8)
	tlb.WriteIndexed(5, TLBEntry{VPN: 7, ASID: 1, PFN: 50, Perms: PermValid})
	tlb.WriteIndexed(2, TLBEntry{VPN: 7, ASID: 1, PFN: 20, Perms: PermValid})
	e, ok := tlb.Lookup(7, 1)
	if !ok || e.PFN != 20 {
		t.Fatalf("Lookup = %+v/%v, want the index-2 entry (PFN 20)", e, ok)
	}
	es, oks := tlb.lookupLinear(7, 1)
	if oks != ok || es != e {
		t.Fatalf("hashed %+v/%v != linear %+v/%v", e, ok, es, oks)
	}
}

// TestMicroTLBInvalidation exercises the three invalidation edges of the
// translation micro-cache: a TLB mutation, an ASID change, and a mode
// switch must each be reflected by the next Translate.
func TestMicroTLBInvalidation(t *testing.T) {
	m := NewMachine(DEC5000)
	m.SetSlowPath(false)
	m.CPU.Mode = ModeUser
	m.CPU.ASID = 1
	m.TLB.WriteRandom(TLBEntry{VPN: 3, ASID: 1, PFN: 9, Perms: PermValid | PermWrite})

	va := uint32(3<<PageShift | 0x10)
	if pa, exc := m.Translate(va, false); exc != ExcNone || pa != 9<<PageShift|0x10 {
		t.Fatalf("initial translate: pa %#x exc %v", pa, exc)
	}
	// Remap the page: the cached translation must not survive the write.
	m.TLB.WriteRandom(TLBEntry{VPN: 3, ASID: 1, PFN: 4, Perms: PermValid | PermWrite})
	if pa, exc := m.Translate(va, false); exc != ExcNone || pa != 4<<PageShift|0x10 {
		t.Fatalf("after remap: pa %#x exc %v, want frame 4", pa, exc)
	}
	// ASID change: the tag must miss, not alias another address space.
	m.CPU.ASID = 2
	if _, exc := m.Translate(va, false); exc != ExcTLBMissL {
		t.Fatalf("after ASID change: exc %v, want TLB miss", exc)
	}
	m.CPU.ASID = 1
	// Invalidate: cached entry must not resurrect the mapping.
	m.TLB.Invalidate(3, 1)
	if _, exc := m.Translate(va, false); exc != ExcTLBMissL {
		t.Fatalf("after invalidate: exc %v, want TLB miss", exc)
	}
	// Kernel-only page: mode is checked on every access, so a mode switch
	// needs no cache invalidation in either direction.
	m.TLB.WriteRandom(TLBEntry{VPN: 3, ASID: 1, PFN: 7, Perms: PermValid | PermKernel})
	m.CPU.Mode = ModeKernel
	if _, exc := m.Translate(va, false); exc != ExcNone {
		t.Fatalf("kernel access to kernel page: exc %v", exc)
	}
	m.CPU.Mode = ModeUser
	if _, exc := m.Translate(va, false); exc != ExcTLBMissL {
		t.Fatalf("user access to kernel page after cached kernel hit: exc %v, want miss", exc)
	}
	// Write permission is likewise per-access: a cached load translation
	// must not let a store through a read-only page.
	m.TLB.WriteRandom(TLBEntry{VPN: 5, ASID: 1, PFN: 8, Perms: PermValid})
	ro := uint32(5 << PageShift)
	if _, exc := m.Translate(ro, false); exc != ExcNone {
		t.Fatalf("read of read-only page: exc %v", exc)
	}
	if _, exc := m.Translate(ro, true); exc != ExcTLBMod {
		t.Fatalf("write to read-only page: exc %v, want Mod", exc)
	}
}

// TestTranslateFastMatchesSlow random-walks loads and stores across a
// small set of pages interleaved with remaps, comparing a fast-path and
// a slow-path machine translation by translation.
func TestTranslateFastMatchesSlow(t *testing.T) {
	fast := NewMachine(DEC5000)
	slow := NewMachine(DEC5000)
	fast.SetSlowPath(false)
	slow.SetSlowPath(true)
	ms := [2]*Machine{fast, slow}

	r := lcgT(7)
	for step := 0; step < 20000; step++ {
		switch r.next() % 8 {
		case 0:
			vpn, asid := r.next()%8, uint8(r.next()%2)
			pfn := r.next() % 32
			perms := uint8(PermValid | uint8(r.next()&uint32(PermWrite|PermKernel)))
			for _, m := range ms {
				m.TLB.WriteRandom(TLBEntry{VPN: vpn, ASID: asid, PFN: pfn, Perms: perms})
			}
		case 1:
			vpn, asid := r.next()%8, uint8(r.next()%2)
			for _, m := range ms {
				m.TLB.Invalidate(vpn, asid)
			}
		case 2:
			asid := uint8(r.next() % 2)
			for _, m := range ms {
				m.CPU.ASID = asid
			}
		case 3:
			mode := ModeUser
			if r.next()%2 == 0 {
				mode = ModeKernel
			}
			for _, m := range ms {
				m.CPU.Mode = mode
			}
		default:
			va := (r.next() % 8 << PageShift) | r.next()&(PageSize-1)
			write := r.next()%2 == 0
			paF, excF := fast.Translate(va, write)
			paS, excS := slow.Translate(va, write)
			if paF != paS || excF != excS {
				t.Fatalf("step %d: Translate(%#x, %v) = %#x/%v fast, %#x/%v slow",
					step, va, write, paF, excF, paS, excS)
			}
		}
		if fast.Clock.Cycles() != slow.Clock.Cycles() {
			t.Fatalf("step %d: clocks diverged: fast %d, slow %d", step, fast.Clock.Cycles(), slow.Clock.Cycles())
		}
	}
}

// TestTimerDueAndEventHorizon pins the event-horizon conditions the fast
// engine gates polling on: TimerDue is exactly Timer.Check's firing
// condition, and EventHorizon reports the earliest service cycle.
func TestTimerDueAndEventHorizon(t *testing.T) {
	m := NewMachine(DEC5000)
	never := ^uint64(0)
	if m.TimerDue() {
		t.Fatal("TimerDue with timer disarmed")
	}
	if got := m.EventHorizon(); got != never {
		t.Fatalf("EventHorizon = %d with nothing pending, want never", got)
	}
	m.Timer.Arm(100)
	if m.TimerDue() {
		t.Fatal("TimerDue before the deadline")
	}
	if got := m.EventHorizon(); got != m.Clock.Cycles()+100 {
		t.Fatalf("EventHorizon = %d, want deadline %d", got, m.Clock.Cycles()+100)
	}
	m.Clock.Tick(99)
	if m.TimerDue() {
		t.Fatal("TimerDue one cycle early")
	}
	if m.Timer.Check() {
		t.Fatal("Check fired one cycle early")
	}
	m.Clock.Tick(1)
	if !m.TimerDue() {
		t.Fatal("TimerDue false at the deadline")
	}
	if !m.Timer.Check() {
		t.Fatal("Check did not fire at the deadline")
	}
	// The fired interrupt is now pending: the horizon is "now".
	if got := m.EventHorizon(); got != m.Clock.Cycles() {
		t.Fatalf("EventHorizon = %d with IRQ pending, want now %d", got, m.Clock.Cycles())
	}
	m.CPU.IntrOn = false
	if got := m.EventHorizon(); got != m.Clock.Cycles()+100 {
		t.Fatalf("EventHorizon = %d with interrupts masked, want re-armed deadline", got)
	}
	m.Timer.Disarm()
	if m.TimerDue() {
		t.Fatal("TimerDue after Disarm")
	}
	if got := m.EventHorizon(); got != never {
		t.Fatalf("EventHorizon = %d after Disarm with IRQ masked, want never", got)
	}
}

// TestSetSlowPathRoundTrip flips the engine switch mid-stream and checks
// translations stay correct in both directions (micro-caches are dropped
// on every transition).
func TestSetSlowPathRoundTrip(t *testing.T) {
	m := NewMachine(DEC5000)
	m.CPU.ASID = 1
	m.TLB.WriteRandom(TLBEntry{VPN: 2, ASID: 1, PFN: 6, Perms: PermValid | PermWrite})
	va := uint32(2 << PageShift)
	for _, on := range []bool{false, true, false, true} {
		m.SetSlowPath(on)
		if m.SlowPath() != on {
			t.Fatalf("SlowPath() = %v, want %v", m.SlowPath(), on)
		}
		if pa, exc := m.Translate(va, true); exc != ExcNone || pa != 6<<PageShift {
			t.Fatalf("slow=%v: pa %#x exc %v", on, pa, exc)
		}
	}
}
