package hw

// Cost model for the simulated machine, in CPU cycles.
//
// The model is deliberately simple and lives in one place so that every
// simulated result can be traced to it. It approximates a MIPS R3000-class
// machine (DECstation 5000/125, 25 MHz): single-issue, one instruction per
// cycle on cache hits, software-managed TLB. The absolute values matter less
// than the structure: each kernel path in this repository is *executed*
// step by step against simulated hardware state, and each step charges one
// of these constants. Relative path lengths therefore come from implemented
// code, not from tuned totals.
const (
	// CostInstr is the base cost of executing one instruction (fetch +
	// execute, primary-cache hit).
	CostInstr = 1

	// CostMemWord is the additional cost of a data memory reference that
	// hits the cache. Loads/stores in the VM pay CostInstr + CostMemWord.
	CostMemWord = 1

	// CostCacheMiss is the penalty for a reference that misses the primary
	// cache. The R3000-era miss penalty to DRAM was on the order of a dozen
	// cycles. The simulator charges it via the pseudo-random miss model in
	// PhysMem (see MissRate in Config).
	CostCacheMiss = 12

	// CostUncached is the cost of an uncached reference (device registers,
	// and kernel accesses performed with physical addresses during
	// exception handling on a cold path).
	CostUncached = 6

	// CostExcEntry is the hardware cost of taking an exception: pipeline
	// flush, mode switch, vectoring to the handler.
	CostExcEntry = 4

	// CostExcReturn is the cost of an RFE/eret: restoring the status
	// register and resuming the interrupted stream.
	CostExcReturn = 3

	// CostTLBProbe is the cost of a software probe of the hardware TLB
	// (the TLBP instruction); hardware lookups on ordinary references are
	// free on hits.
	CostTLBProbe = 2

	// CostTLBWrite is the cost of writing one hardware TLB entry (TLBWR /
	// TLBWI).
	CostTLBWrite = 2

	// CostSTLBLookup is the cost of the Aegis software-TLB hash probe on a
	// hardware-TLB miss: hash, one 8-byte entry load (done with physical
	// addresses, hence uncached), compare.
	CostSTLBLookup = 10

	// CostContextID is the cost of changing the address-space tag
	// (ASID / TLB context register) during a context switch.
	CostContextID = 3
)

// MicrosPerCycle converts cycles to microseconds at the given clock rate.
func MicrosPerCycle(mhz float64) float64 { return 1.0 / mhz }
