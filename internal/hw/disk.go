package hw

import (
	"errors"
	"fmt"
	"sort"

	"exokernel/internal/fault"
)

// DiskFault decides, per block transfer, whether the simulated disk
// misbehaves: a latency spike, a hard error, or a flipped byte in the
// transferred data. nil means perfect hardware — the default, and the
// only configuration the benchmarks ever run.
type DiskFault interface {
	ReadFault(b uint32) fault.DiskVerdict
	WriteFault(b uint32) fault.DiskVerdict
}

// DiskPower decides, at each completed disk transfer (a disk-I/O
// boundary), whether power fails at that instant. nil means the power
// never fails. The hook sees the operation kind, the block, and the
// simulated cycle so a harness can fire at an exact write boundary or an
// exact simulated time (internal/fault implements it).
type DiskPower interface {
	PowerFail(write bool, b uint32, cycle uint64) bool
}

// ErrPowerFail is returned by every disk operation once power has
// failed, including the operation during which the failure fired: the
// caller cannot know whether that transfer reached the platter — the
// defining ambiguity of a power-fail crash.
var ErrPowerFail = errors.New("hw: disk power failed")

// Disk models a fixed disk with page-sized blocks, a seek-dependent
// access cost, and a volatile write cache — the storage substrate for
// the paper's claim that an exokernel should "protect disks without
// understanding file systems". The geometry model is deliberately
// simple: cost = fixed controller overhead + seek proportional to
// cylinder distance + per-word transfer. At 25 MHz the defaults give
// ~1 ms for an adjacent access and ~9 ms for a full-stroke seek,
// 1995-plausible numbers.
//
// Durability model: WriteBlock lands in the volatile write cache;
// ReadBlock sees cached writes (read-your-writes), so within a powered
// session the cache is invisible. Flush is the barrier that moves every
// cached write to the stable image. A power failure (Crash) destroys an
// arbitrary seeded subset of the un-flushed writes — each cached block
// independently either reached the platter or evaporated — while the
// stable image is preserved exactly. Crash-consistent storage clients
// (internal/exos journaling) are built on exactly these semantics.
type Disk struct {
	clock  *Clock
	blocks [][]byte
	head   uint32 // current head position (block number)

	// Volatile write cache: block → pending contents. Writes are
	// charged at WriteBlock time (write-through timing, write-back
	// durability); Flush charges the barrier.
	wcache map[uint32][]byte
	dead   bool // power failed; every operation errors until PowerOn

	// Cost parameters in cycles (documented like hw/costs.go).
	CostFixed   uint64 // controller + rotational average
	CostPerSeek uint64 // per blocksBetween(head, target)/seekUnit step
	seekUnit    uint32

	// Fault, when non-nil, is consulted once per block transfer (after
	// the bounds check, before the DMA). See internal/fault.
	Fault DiskFault
	// Power, when non-nil, is consulted at the completion of every
	// successful transfer; returning true fails the power at that exact
	// I/O boundary.
	Power DiskPower

	// Stats.
	Reads, Writes, SeekBlocks uint64
	// Write-cache and crash stats: barrier flushes issued, blocks made
	// stable by them, power failures suffered, and the fate of cached
	// writes at each crash (reached the platter vs evaporated).
	Flushes, FlushedBlocks           uint64
	PowerFails, CrashKept, CrashLost uint64
	// Fault-injection stats: failed transfers, injected latency, and
	// corrupted transfers. All zero with Fault nil.
	ReadErrs, WriteErrs, SlowCycles, Corruptions uint64
}

// DiskBlockSize is the disk block size; equal to the page size so a block
// DMA fills exactly one frame.
const DiskBlockSize = PageSize

// NewDisk creates a disk with nblocks zeroed blocks. Block storage is
// allocated lazily on first touch (simulator memory economy only; the
// cost model is unaffected).
func NewDisk(clock *Clock, nblocks int) *Disk {
	return &Disk{
		clock:       clock,
		blocks:      make([][]byte, nblocks),
		wcache:      make(map[uint32][]byte),
		CostFixed:   25000, // 1 ms at 25 MHz
		CostPerSeek: 500,
		seekUnit:    16, // blocks per "cylinder"
	}
}

// block materializes block b's stable storage.
func (d *Disk) block(b uint32) []byte {
	if d.blocks[b] == nil {
		d.blocks[b] = make([]byte, DiskBlockSize)
	}
	return d.blocks[b]
}

// NumBlocks reports the disk capacity in blocks.
func (d *Disk) NumBlocks() int { return len(d.blocks) }

// CacheDirty reports how many blocks sit in the volatile write cache,
// i.e. are readable but not yet stable.
func (d *Disk) CacheDirty() int { return len(d.wcache) }

// PowerFailed reports whether the disk has lost power.
func (d *Disk) PowerFailed() bool { return d.dead }

// access charges the seek + rotation + transfer cost of touching block b.
func (d *Disk) access(b uint32) {
	dist := uint64(0)
	if b > d.head {
		dist = uint64((b - d.head) / d.seekUnit)
	} else {
		dist = uint64((d.head - b) / d.seekUnit)
	}
	d.SeekBlocks += dist
	d.clock.Tick(d.CostFixed + dist*d.CostPerSeek + DiskBlockSize/WordSize)
	d.head = b
}

// boundary consults the power hook at the completion of a transfer.
// If power fails here, the operation's own outcome becomes unknowable
// to the caller: ErrPowerFail is returned even though the transfer
// finished an instant earlier.
func (d *Disk) boundary(write bool, b uint32) error {
	if d.Power != nil && d.Power.PowerFail(write, b, d.clock.Cycles()) {
		d.dead = true
		d.PowerFails++
		return ErrPowerFail
	}
	return nil
}

// ReadBlock DMAs block b into the physical frame. Reads see the write
// cache (read-your-writes). Under fault injection a read may stall
// (latency spike), fail outright after the seek cost is paid (a stalled
// controller still consumed the time), or deliver the block with one
// byte flipped — which only a caller that checksums its data can detect.
func (d *Disk) ReadBlock(b uint32, mem *PhysMem, frame uint32) error {
	if d.dead {
		return ErrPowerFail
	}
	if int(b) >= len(d.blocks) {
		return fmt.Errorf("hw: disk read past end: block %d", b)
	}
	var v fault.DiskVerdict
	v.CorruptOff = -1
	if d.Fault != nil {
		v = d.Fault.ReadFault(b)
	}
	d.access(b)
	if v.Delay > 0 {
		d.clock.Tick(v.Delay)
		d.SlowCycles += v.Delay
	}
	if v.Err != nil {
		d.ReadErrs++
		return v.Err
	}
	d.Reads++
	page := mem.Page(frame)
	if pending, ok := d.wcache[b]; ok {
		copy(page, pending)
	} else {
		copy(page, d.block(b))
	}
	if v.CorruptOff >= 0 {
		page[v.CorruptOff%len(page)] ^= v.CorruptXor
		d.Corruptions++
	}
	return d.boundary(false, b)
}

// WriteBlock DMAs the physical frame into the volatile write cache for
// block b; the data is readable immediately but stable only after Flush.
// Fault injection mirrors ReadBlock; a corrupted write lands the flipped
// byte in the cached copy, so the damage is durable once flushed.
func (d *Disk) WriteBlock(b uint32, mem *PhysMem, frame uint32) error {
	if d.dead {
		return ErrPowerFail
	}
	if int(b) >= len(d.blocks) {
		return fmt.Errorf("hw: disk write past end: block %d", b)
	}
	var v fault.DiskVerdict
	v.CorruptOff = -1
	if d.Fault != nil {
		v = d.Fault.WriteFault(b)
	}
	d.access(b)
	if v.Delay > 0 {
		d.clock.Tick(v.Delay)
		d.SlowCycles += v.Delay
	}
	if v.Err != nil {
		d.WriteErrs++
		return v.Err
	}
	d.Writes++
	blk, ok := d.wcache[b]
	if !ok {
		blk = make([]byte, DiskBlockSize)
		d.wcache[b] = blk
	}
	copy(blk, mem.Page(frame))
	if v.CorruptOff >= 0 {
		blk[v.CorruptOff%len(blk)] ^= v.CorruptXor
		d.Corruptions++
	}
	return d.boundary(true, b)
}

// Flush is the write barrier: every cached write is committed to the
// stable image, in ascending block order (the order is observable
// through seek costs, so it is pinned for determinism). One controller
// overhead is charged for the barrier plus a transfer per block.
func (d *Disk) Flush() error {
	if d.dead {
		return ErrPowerFail
	}
	if len(d.wcache) == 0 {
		return nil
	}
	d.Flushes++
	d.clock.Tick(d.CostFixed)
	for _, b := range d.cachedBlocks() {
		d.access(b)
		copy(d.block(b), d.wcache[b])
		delete(d.wcache, b)
		d.FlushedBlocks++
	}
	return nil
}

// cachedBlocks returns the write-cache keys in ascending order.
func (d *Disk) cachedBlocks() []uint32 {
	bs := make([]uint32, 0, len(d.wcache))
	for b := range d.wcache {
		bs = append(bs, b)
	}
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	return bs
}

// PowerOff fails the power between I/O boundaries (the "any simulated
// cycle" crash point): every subsequent operation errors until the
// machine reboots and calls PowerOn. The write cache keeps its contents
// until Crash decides their fate.
func (d *Disk) PowerOff() {
	if !d.dead {
		d.dead = true
		d.PowerFails++
	}
}

// Crash resolves a power failure: each un-flushed cached write
// independently either reached the platter or evaporated, decided by a
// splitmix64 stream over the given seed (so a crash is replayed exactly
// by its seed). The stable image is otherwise preserved. The disk is
// left powered off; PowerOn restores service over the surviving image.
// It returns how many cached writes survived and how many were lost.
func (d *Disk) Crash(seed uint64) (kept, lost int) {
	d.PowerOff()
	rng := seed
	next := func() uint64 {
		rng += 0x9E3779B97F4A7C15
		z := rng
		z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
		z = (z ^ z>>27) * 0x94D049BB133111EB
		return z ^ z>>31
	}
	for _, b := range d.cachedBlocks() {
		if next()&1 == 0 {
			copy(d.block(b), d.wcache[b])
			kept++
		} else {
			lost++
		}
		delete(d.wcache, b)
	}
	d.CrashKept += uint64(kept)
	d.CrashLost += uint64(lost)
	return kept, lost
}

// PowerOn restores power after a crash. The write cache is empty (Crash
// resolved it); the stable image is whatever survived.
func (d *Disk) PowerOn() { d.dead = false }

// Peek returns a block's raw *stable* contents without charging (test
// assertions, and the platter-corruption tests mutate the returned
// slice in place). Cached writes that have not been flushed are not
// visible here — that is the point of the distinction.
func (d *Disk) Peek(b uint32) []byte { return d.block(b) }
