package hw

import (
	"fmt"

	"exokernel/internal/fault"
)

// DiskFault decides, per block transfer, whether the simulated disk
// misbehaves: a latency spike, a hard error, or a flipped byte in the
// transferred data. nil means perfect hardware — the default, and the
// only configuration the benchmarks ever run.
type DiskFault interface {
	ReadFault(b uint32) fault.DiskVerdict
	WriteFault(b uint32) fault.DiskVerdict
}

// Disk models a fixed disk with page-sized blocks and a seek-dependent
// access cost — the storage substrate for the paper's claim that an
// exokernel should "protect disks without understanding file systems".
// The geometry model is deliberately simple: cost = fixed controller
// overhead + seek proportional to cylinder distance + per-word transfer.
// At 25 MHz the defaults give ~1 ms for an adjacent access and ~9 ms for
// a full-stroke seek, 1995-plausible numbers.
type Disk struct {
	clock  *Clock
	blocks [][]byte
	head   uint32 // current head position (block number)

	// Cost parameters in cycles (documented like hw/costs.go).
	CostFixed   uint64 // controller + rotational average
	CostPerSeek uint64 // per blocksBetween(head, target)/seekUnit step
	seekUnit    uint32

	// Fault, when non-nil, is consulted once per block transfer (after
	// the bounds check, before the DMA). See internal/fault.
	Fault DiskFault

	// Stats.
	Reads, Writes, SeekBlocks uint64
	// Fault-injection stats: failed transfers, injected latency, and
	// corrupted transfers. All zero with Fault nil.
	ReadErrs, WriteErrs, SlowCycles, Corruptions uint64
}

// DiskBlockSize is the disk block size; equal to the page size so a block
// DMA fills exactly one frame.
const DiskBlockSize = PageSize

// NewDisk creates a disk with nblocks zeroed blocks. Block storage is
// allocated lazily on first touch (simulator memory economy only; the
// cost model is unaffected).
func NewDisk(clock *Clock, nblocks int) *Disk {
	return &Disk{
		clock:       clock,
		blocks:      make([][]byte, nblocks),
		CostFixed:   25000, // 1 ms at 25 MHz
		CostPerSeek: 500,
		seekUnit:    16, // blocks per "cylinder"
	}
}

// block materializes block b's storage.
func (d *Disk) block(b uint32) []byte {
	if d.blocks[b] == nil {
		d.blocks[b] = make([]byte, DiskBlockSize)
	}
	return d.blocks[b]
}

// NumBlocks reports the disk capacity in blocks.
func (d *Disk) NumBlocks() int { return len(d.blocks) }

// access charges the seek + rotation + transfer cost of touching block b.
func (d *Disk) access(b uint32) {
	dist := uint64(0)
	if b > d.head {
		dist = uint64((b - d.head) / d.seekUnit)
	} else {
		dist = uint64((d.head - b) / d.seekUnit)
	}
	d.SeekBlocks += dist
	d.clock.Tick(d.CostFixed + dist*d.CostPerSeek + DiskBlockSize/WordSize)
	d.head = b
}

// ReadBlock DMAs block b into the physical frame. Under fault injection a
// read may stall (latency spike), fail outright after the seek cost is
// paid (a stalled controller still consumed the time), or deliver the
// block with one byte flipped — which only a caller that checksums its
// data can detect.
func (d *Disk) ReadBlock(b uint32, mem *PhysMem, frame uint32) error {
	if int(b) >= len(d.blocks) {
		return fmt.Errorf("hw: disk read past end: block %d", b)
	}
	var v fault.DiskVerdict
	v.CorruptOff = -1
	if d.Fault != nil {
		v = d.Fault.ReadFault(b)
	}
	d.access(b)
	if v.Delay > 0 {
		d.clock.Tick(v.Delay)
		d.SlowCycles += v.Delay
	}
	if v.Err != nil {
		d.ReadErrs++
		return v.Err
	}
	d.Reads++
	page := mem.Page(frame)
	copy(page, d.block(b))
	if v.CorruptOff >= 0 {
		page[v.CorruptOff%len(page)] ^= v.CorruptXor
		d.Corruptions++
	}
	return nil
}

// WriteBlock DMAs the physical frame into block b. Fault injection
// mirrors ReadBlock; a corrupted write lands the flipped byte on the
// platter, so the damage is durable until overwritten.
func (d *Disk) WriteBlock(b uint32, mem *PhysMem, frame uint32) error {
	if int(b) >= len(d.blocks) {
		return fmt.Errorf("hw: disk write past end: block %d", b)
	}
	var v fault.DiskVerdict
	v.CorruptOff = -1
	if d.Fault != nil {
		v = d.Fault.WriteFault(b)
	}
	d.access(b)
	if v.Delay > 0 {
		d.clock.Tick(v.Delay)
		d.SlowCycles += v.Delay
	}
	if v.Err != nil {
		d.WriteErrs++
		return v.Err
	}
	d.Writes++
	blk := d.block(b)
	copy(blk, mem.Page(frame))
	if v.CorruptOff >= 0 {
		blk[v.CorruptOff%len(blk)] ^= v.CorruptXor
		d.Corruptions++
	}
	return nil
}

// Peek returns a block's raw contents without charging (test assertions).
func (d *Disk) Peek(b uint32) []byte { return d.block(b) }
