package hw

import "fmt"

// Disk models a fixed disk with page-sized blocks and a seek-dependent
// access cost — the storage substrate for the paper's claim that an
// exokernel should "protect disks without understanding file systems".
// The geometry model is deliberately simple: cost = fixed controller
// overhead + seek proportional to cylinder distance + per-word transfer.
// At 25 MHz the defaults give ~1 ms for an adjacent access and ~9 ms for
// a full-stroke seek, 1995-plausible numbers.
type Disk struct {
	clock  *Clock
	blocks [][]byte
	head   uint32 // current head position (block number)

	// Cost parameters in cycles (documented like hw/costs.go).
	CostFixed   uint64 // controller + rotational average
	CostPerSeek uint64 // per blocksBetween(head, target)/seekUnit step
	seekUnit    uint32

	// Stats.
	Reads, Writes, SeekBlocks uint64
}

// DiskBlockSize is the disk block size; equal to the page size so a block
// DMA fills exactly one frame.
const DiskBlockSize = PageSize

// NewDisk creates a disk with nblocks zeroed blocks. Block storage is
// allocated lazily on first touch (simulator memory economy only; the
// cost model is unaffected).
func NewDisk(clock *Clock, nblocks int) *Disk {
	return &Disk{
		clock:       clock,
		blocks:      make([][]byte, nblocks),
		CostFixed:   25000, // 1 ms at 25 MHz
		CostPerSeek: 500,
		seekUnit:    16, // blocks per "cylinder"
	}
}

// block materializes block b's storage.
func (d *Disk) block(b uint32) []byte {
	if d.blocks[b] == nil {
		d.blocks[b] = make([]byte, DiskBlockSize)
	}
	return d.blocks[b]
}

// NumBlocks reports the disk capacity in blocks.
func (d *Disk) NumBlocks() int { return len(d.blocks) }

// access charges the seek + rotation + transfer cost of touching block b.
func (d *Disk) access(b uint32) {
	dist := uint64(0)
	if b > d.head {
		dist = uint64((b - d.head) / d.seekUnit)
	} else {
		dist = uint64((d.head - b) / d.seekUnit)
	}
	d.SeekBlocks += dist
	d.clock.Tick(d.CostFixed + dist*d.CostPerSeek + DiskBlockSize/WordSize)
	d.head = b
}

// ReadBlock DMAs block b into the physical frame.
func (d *Disk) ReadBlock(b uint32, mem *PhysMem, frame uint32) error {
	if int(b) >= len(d.blocks) {
		return fmt.Errorf("hw: disk read past end: block %d", b)
	}
	d.access(b)
	d.Reads++
	copy(mem.Page(frame), d.block(b))
	return nil
}

// WriteBlock DMAs the physical frame into block b.
func (d *Disk) WriteBlock(b uint32, mem *PhysMem, frame uint32) error {
	if int(b) >= len(d.blocks) {
		return fmt.Errorf("hw: disk write past end: block %d", b)
	}
	d.access(b)
	d.Writes++
	copy(d.block(b), mem.Page(frame))
	return nil
}

// Peek returns a block's raw contents without charging (test assertions).
func (d *Disk) Peek(b uint32) []byte { return d.block(b) }
