// Package cliutil holds the tiny flag-handling helpers the cmd/ tools
// share, so each binary doesn't re-implement (and slowly diverge on)
// the same validation.
package cliutil

import (
	"fmt"
	"strings"
)

// CheckFormat validates a -format flag value against the formats a tool
// accepts, producing the tools' common error shape:
//
//	exotrace: unknown -format "xml" (want chrome, jsonl, or text)
func CheckFormat(tool, got string, want ...string) error {
	for _, w := range want {
		if got == w {
			return nil
		}
	}
	var list string
	switch len(want) {
	case 0:
		list = "nothing"
	case 1:
		list = want[0]
	case 2:
		list = want[0] + " or " + want[1]
	default:
		list = strings.Join(want[:len(want)-1], ", ") + ", or " + want[len(want)-1]
	}
	return fmt.Errorf("%s: unknown -format %q (want %s)", tool, got, list)
}
