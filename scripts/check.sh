#!/bin/sh
# Local verification gate (tier-1+): build, vet, format, race-enabled tests.
# Run from the repository root: ./scripts/check.sh  (or: make check)
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== gofmt -l"
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmt" >&2
    exit 1
fi

echo "== go test -race ./..."
go test -race ./...

echo "check: OK"
