#!/bin/sh
# Local verification gate (tier-1+): build, vet, format, race-enabled tests.
# Run from the repository root: ./scripts/check.sh  (or: make check)
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== gofmt -l"
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmt" >&2
    exit 1
fi

echo "== go test -race ./..."
go test -race ./...

echo "== bench smoke (BENCH JSON + benchdiff self-compare)"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go run ./cmd/aegisbench -only table2 -format json > "$tmp/bench.json"
go run ./cmd/benchdiff -validate "$tmp/bench.json"
go run ./cmd/benchdiff -threshold 0 "$tmp/bench.json" "$tmp/bench.json"

echo "== engine invariance smoke (fast vs EXO_SLOWPATH=1)"
# The fast execution engine must be invisible in simulated time: text
# tables byte-identical, JSON metrics clean under benchdiff at threshold
# 0 (host wall-clock metrics are informational and never gated). Full
# sweep: make invariance.
go run ./cmd/aegisbench -only table2 > "$tmp/fast.txt"
EXO_SLOWPATH=1 go run ./cmd/aegisbench -only table2 > "$tmp/slow.txt"
cmp "$tmp/fast.txt" "$tmp/slow.txt"
EXO_SLOWPATH=1 go run ./cmd/aegisbench -only table2 -format json > "$tmp/bench_slow.json"
go run ./cmd/benchdiff -threshold 0 "$tmp/bench_slow.json" "$tmp/bench.json"

echo "== jit smoke (Table 9 under EXO_NOJIT=1 vs default)"
# The trace-JIT tier must be invisible in simulated time: Table 9 — the
# matmul workload whose inner loops the JIT compiles — renders byte-
# identical simulated output with the tier on (default) and off
# (EXO_NOJIT=1). Small matrix keeps the smoke fast; the full sweep is
# covered by make invariance and the vm engine-equivalence quickcheck.
go run ./cmd/aegisbench -only table9 -n 32 > "$tmp/jit.txt"
EXO_NOJIT=1 go run ./cmd/aegisbench -only table9 -n 32 > "$tmp/nojit.txt"
cmp "$tmp/jit.txt" "$tmp/nojit.txt"

echo "== chaos smoke (fixed-seed fault schedule + invariant gate + replay)"
# Smaller than \`make chaos\` (300 events / 25 reboots vs 1000 / 100)
# but the same gate: seeded faults on every device, power-fail
# kill-and-reboot rounds on the journaled-FS machine, invariants after
# every step, and a replay that must reproduce the identical fault
# logs, traces, clocks, and crash census.
go run ./cmd/chaos -seed 1 -target 300 -reboots 25 -verify -q

echo "== soak smoke (10^4 events, fixed seeds, SOAK JSON round-trip)"
# Smaller than \`make soak\` (4 rounds x 2500 events vs 100 x 10000) but
# the same gate: rotating seeds, invariants after every step, the fleet
# bus aggregating both machines, SOAK JSON out. The committed
# SOAK_baseline.json is the same configuration (make soakbaseline).
go run ./cmd/soak -seed 1 -rounds 4 -events 2500 -q -o "$tmp/soak.json"
grep -q '"schema": "aegis-soak"' "$tmp/soak.json"

echo "== soakdiff gate (witnesses vs committed SOAK_baseline.json)"
# The smoke soak above uses the baseline's exact configuration, so every
# simulated-side determinism witness (seed, fault count, steps, sim
# cycles, trace hash per window) must match the committed file bit for
# bit — soakdiff gates witnesses at zero tolerance regardless of
# -threshold. The huge trend threshold keeps host wall-clock noise on a
# loaded CI box out of the gate; trend regressions are for
# \`make soakdiff\` runs on a quiet machine.
go run ./cmd/soakdiff -validate "$tmp/soak.json"
go run ./cmd/soakdiff -threshold 0 "$tmp/soak.json" "$tmp/soak.json"
go run ./cmd/soakdiff -threshold 1000 SOAK_baseline.json "$tmp/soak.json"

echo "== exoflow smoke (causal span trees, byte-stable vs golden)"
# The default scenario's text rendering is a function of simulated state
# and seeded span identities only, so it must reproduce the committed
# golden byte for byte (same file the cmd/exoflow golden test pins).
go run ./cmd/exoflow > "$tmp/flow.txt"
cmp "$tmp/flow.txt" cmd/exoflow/testdata/flow_seed1.golden
grep -q 'orphans=0' "$tmp/flow.txt"

echo "== exotop smoke (one-shot fleet snapshot over a scripted run)"
go run ./cmd/exotop -once -seed 1 -target 200 > "$tmp/top.txt"
grep -q 'fleet  machines=3' "$tmp/top.txt"

echo "== exoprof smoke (PROF JSON + pprof export + profile self-diff)"
# Cycle profiles are exact and deterministic: the PROF JSON must
# validate, the pprof protobuf must load in \`go tool pprof\`, and a
# profile diffed against itself must show zero per-site deltas. The
# committed PROF_baseline.json (make prof) must stay valid too; it is
# not cycle-gated here because table9/table10 are too slow for a smoke.
go run ./cmd/exoprof -format json -o "$tmp/prof.json" table2
go run ./cmd/benchdiff -prof -validate "$tmp/prof.json"
go run ./cmd/benchdiff -prof "$tmp/prof.json" "$tmp/prof.json" | grep -q 'no per-site cycle deltas'
go run ./cmd/exoprof -format pprof -o "$tmp/prof.pb.gz" table2
go tool pprof -top "$tmp/prof.pb.gz" | grep -q 'Type: cycles'
go run ./cmd/benchdiff -prof -validate PROF_baseline.json

echo "check: OK"
