module exokernel

go 1.22
